/**
 * @file
 * Trace-replay backend tests: format round-trips, stream equivalence
 * with the source generator, nextBatch boundary/wrap behaviour, and the
 * headline guarantee — record → replay reproduces the live-generator
 * RunStats bit-for-bit for every workload of the standard suite.
 *
 * Trace files are written into the test's working directory (the build
 * tree under ctest) with per-test names, so parallel test binaries
 * never collide.
 */

#include <cstdio>
#include <vector>

#include <gtest/gtest.h>

#include "expect_status.hh"
#include "golden_scenarios.hh"
#include "sim/environment.hh"
#include "workloads/suite.hh"
#include "workloads/trace.hh"

using namespace asap;

namespace
{

/** Small, fast generator spec for the format-level tests. */
WorkloadSpec
smallSpec()
{
    WorkloadSpec spec;
    spec.name = "small";
    spec.paperGb = 2.5;
    spec.residentPages = 6'000;
    spec.dataVmas = 3;
    spec.smallVmas = 5;
    spec.cyclesPerAccess = 4;
    spec.windowFraction = 0.5;
    spec.windowPages = 600;
    spec.nearFraction = 0.1;
    spec.seqFraction = 0.1;
    spec.linesPerPage = 2;
    spec.burstContinueProb = 0.5;
    spec.machineMemBytes = 512_MiB;
    spec.guestMemBytes = 128_MiB;
    spec.churnOps = 5'000;
    spec.churnMaxOrder = 2;
    return spec;
}

/** RAII deleter so test artifacts do not pile up in the build tree. */
class TempTrace
{
  public:
    explicit TempTrace(std::string path) : path_(std::move(path)) {}
    ~TempTrace() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** The addresses a fresh replay of @p path yields via next(). */
std::vector<VirtAddr>
replayAddresses(const std::string &path, std::size_t count)
{
    TraceReplayWorkload replay(path);
    Rng unused(1);
    replay.reset(unused);
    std::vector<VirtAddr> out(count);
    for (std::size_t i = 0; i < count; ++i)
        out[i] = replay.next(unused);
    return out;
}

void
expectStatsEqual(const golden::Expect &live, const golden::Expect &rep)
{
    EXPECT_EQ(live.tlbL1Hits, rep.tlbL1Hits);
    EXPECT_EQ(live.tlbL2Hits, rep.tlbL2Hits);
    EXPECT_EQ(live.tlbMisses, rep.tlbMisses);
    EXPECT_EQ(live.faults, rep.faults);
    EXPECT_EQ(live.walkCount, rep.walkCount);
    EXPECT_EQ(live.walkSum, rep.walkSum);
    EXPECT_EQ(live.walkMin, rep.walkMin);
    EXPECT_EQ(live.walkMax, rep.walkMax);
    EXPECT_EQ(live.totalCycles, rep.totalCycles);
    EXPECT_EQ(live.walkCycles, rep.walkCycles);
    EXPECT_EQ(live.dataCycles, rep.dataCycles);
    EXPECT_EQ(live.computeCycles, rep.computeCycles);
    EXPECT_EQ(live.levelTotal, rep.levelTotal);
    EXPECT_EQ(live.levelPwc, rep.levelPwc);
    EXPECT_EQ(live.levelDram, rep.levelDram);
    EXPECT_EQ(live.appTriggers, rep.appTriggers);
    EXPECT_EQ(live.appRangeHits, rep.appRangeHits);
    EXPECT_EQ(live.appAttempted, rep.appAttempted);
    EXPECT_EQ(live.appIssued, rep.appIssued);
    EXPECT_EQ(live.hostIssued, rep.hostIssued);
}

/** Run @p spec on a fresh System (live generator or trace replay). */
RunStats
runFresh(const WorkloadSpec &spec, const EnvironmentOptions &options,
         const MachineConfig &machine, const RunConfig &run)
{
    System system(makeSystemConfig(spec, options));
    const auto workload = makeWorkload(spec);
    workload->setup(system);
    Machine m(system, machine);
    Simulator simulator(system, m, *workload);
    return simulator.run(run);
}

} // namespace

TEST(TraceFormat, HeaderRoundTrip)
{
    const TempTrace trace("trace_header_roundtrip.asaptrace");
    const WorkloadSpec spec = smallSpec();
    recordTrace(spec, trace.path(), /*seed=*/11, /*accesses=*/500);

    const WorkloadSpec loaded = traceSpec(trace.path());
    EXPECT_EQ(loaded.name, spec.name);
    EXPECT_EQ(loaded.tracePath, trace.path());
    EXPECT_DOUBLE_EQ(loaded.paperGb, spec.paperGb);
    EXPECT_EQ(loaded.residentPages, spec.residentPages);
    EXPECT_EQ(loaded.cyclesPerAccess, spec.cyclesPerAccess);
    EXPECT_EQ(loaded.machineMemBytes, spec.machineMemBytes);
    EXPECT_EQ(loaded.guestMemBytes, spec.guestMemBytes);
    EXPECT_EQ(loaded.churnOps, spec.churnOps);
    EXPECT_EQ(loaded.guestChurnOps, spec.guestChurnOps);
    EXPECT_EQ(loaded.churnMaxOrder, spec.churnMaxOrder);

    const TraceFile file(trace.path());
    EXPECT_EQ(file.header().accessCount, 500u);
    EXPECT_EQ(file.header().recordSeed, 11u);
}

TEST(TraceFormat, SpecByNameTracePrefix)
{
    const TempTrace trace("trace_specbyname.asaptrace");
    recordTrace(smallSpec(), trace.path(), 7, 200);

    const auto spec = specByName("trace:" + trace.path());
    ASSERT_TRUE(spec.has_value());
    EXPECT_EQ(spec->name, "small");
    EXPECT_EQ(spec->tracePath, trace.path());

    // Trace-backed specs are immune to quick/scaled shrinking: the
    // recorded stream cannot be rescaled.
    const WorkloadSpec scaled = scaledDown(*spec, 4);
    EXPECT_EQ(scaled.residentPages, spec->residentPages);
    EXPECT_EQ(scaled.churnOps, spec->churnOps);
}

/** Malformed inputs (wrong magic, truncation) must surface as a
 *  DataLoss StatusError with a clear message, never read out of
 *  bounds — traces may come from external converters. */
TEST(TraceFormat, MalformedTraceIsFatal)
{
    const TempTrace garbage("trace_garbage.asaptrace");
    {
        std::FILE *f = std::fopen(garbage.path().c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fputs("definitely not a trace file, but long enough",
                   f);
        std::fclose(f);
    }
    testutil::expectStatusError([&] { TraceFile{garbage.path()}; },
                                StatusCode::DataLoss,
                                "not an ASAP trace");

    // A valid trace cut mid-file must be rejected at load.
    const TempTrace valid("trace_truncate_src.asaptrace");
    recordTrace(smallSpec(), valid.path(), 7, 200);
    const TempTrace cut("trace_truncated.asaptrace");
    {
        std::FILE *in = std::fopen(valid.path().c_str(), "rb");
        ASSERT_NE(in, nullptr);
        std::vector<char> bytes(400);
        const std::size_t got =
            std::fread(bytes.data(), 1, bytes.size(), in);
        std::fclose(in);
        ASSERT_EQ(got, bytes.size());
        std::FILE *out = std::fopen(cut.path().c_str(), "wb");
        ASSERT_NE(out, nullptr);
        std::fwrite(bytes.data(), 1, bytes.size() / 2, out);
        std::fclose(out);
    }
    testutil::expectStatusError([&] { TraceFile{cut.path()}; },
                                "truncated");
}

/** A header whose access count exceeds what the stream bytes can hold
 *  (each delta is at least one varint byte) is rejected at load, not
 *  mid-replay. Crafted by hand: the field offsets depend on the name. */
TEST(TraceFormat, StreamShorterThanAccessCountIsFatal)
{
    std::string bytes;
    bytes.append("ASAPTRC1", 8);
    put32(bytes, 1);            // version
    put32(bytes, 0);            // reserved
    putString(bytes, "x");      // name
    put32(bytes, 4);            // cyclesPerAccess
    put64(bytes, doubleToBits(1.0));
    put64(bytes, 100);          // residentPages
    put64(bytes, 1_GiB);        // machineMemBytes
    put64(bytes, 256_MiB);      // guestMemBytes
    put64(bytes, 0);            // churnOps
    put64(bytes, 0);            // guestChurnOps
    put32(bytes, 0);            // churnMaxOrder
    put64(bytes, 7);            // recordSeed
    put64(bytes, 0);            // opBytes (no setup ops)
    put64(bytes, 5);            // accessCount: 5 ...
    put64(bytes, 2);            // ... but only 2 stream bytes
    bytes.push_back(2);
    bytes.push_back(4);

    const TempTrace bad("trace_short_stream.asaptrace");
    {
        std::FILE *f = std::fopen(bad.path().c_str(), "wb");
        ASSERT_NE(f, nullptr);
        ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
                  bytes.size());
        std::fclose(f);
    }
    testutil::expectStatusError([&] { TraceFile{bad.path()}; },
                                "shorter than access count");
}

/** A stream byte with its varint continuation bit forced on makes the
 *  last delta run past the section end: the decoder must fatal() when
 *  it gets there, not read on. */
TEST(TraceFormat, CorruptStreamVarintIsFatal)
{
    const TempTrace valid("trace_varint_src.asaptrace");
    recordTrace(smallSpec(), valid.path(), 7, 200);

    std::string bytes;
    {
        std::FILE *in = std::fopen(valid.path().c_str(), "rb");
        ASSERT_NE(in, nullptr);
        char buffer[4096];
        std::size_t n;
        while ((n = std::fread(buffer, 1, sizeof(buffer), in)) > 0)
            bytes.append(buffer, n);
        std::fclose(in);
    }
    bytes.back() = static_cast<char>(bytes.back() | 0x80);

    const TempTrace bad("trace_varint_bad.asaptrace");
    {
        std::FILE *out = std::fopen(bad.path().c_str(), "wb");
        ASSERT_NE(out, nullptr);
        ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), out),
                  bytes.size());
        std::fclose(out);
    }

    const auto decodeEverything = [&bad]() {
        TraceReplayWorkload replay(bad.path());
        Rng unused(1);
        for (unsigned i = 0; i < 200; ++i)
            replay.next(unused);
    };
    testutil::expectStatusError(decodeEverything,
                                "truncated varint|exceeds 64 bits");
}

TEST(TraceReplay, StreamMatchesGenerator)
{
    const TempTrace trace("trace_stream_match.asaptrace");
    const WorkloadSpec spec = smallSpec();
    constexpr std::size_t count = 3'000;
    constexpr std::uint64_t seed = 99;
    recordTrace(spec, trace.path(), seed, count);

    // Live generator stream, drawn exactly as the recorder drew it.
    System system(makeSystemConfig(spec, EnvironmentOptions{}));
    SyntheticWorkload generator(spec);
    generator.setup(system);
    Rng rng(seed);
    generator.reset(rng);
    std::vector<VirtAddr> live(count);
    for (std::size_t i = 0; i < count; ++i)
        live[i] = generator.next(rng);

    EXPECT_EQ(replayAddresses(trace.path(), count), live);
}

TEST(TraceReplay, SetupReproducesVmaLayout)
{
    const TempTrace trace("trace_vma_layout.asaptrace");
    const WorkloadSpec spec = smallSpec();
    recordTrace(spec, trace.path(), 7, 200);

    System liveSystem(makeSystemConfig(spec, EnvironmentOptions{}));
    SyntheticWorkload generator(spec);
    generator.setup(liveSystem);

    System replaySystem(makeSystemConfig(spec, EnvironmentOptions{}));
    TraceReplayWorkload replay(trace.path());
    replay.setup(replaySystem);

    const auto liveVmas = liveSystem.appSpace().vmas().all();
    const auto replayVmas = replaySystem.appSpace().vmas().all();
    ASSERT_EQ(liveVmas.size(), replayVmas.size());
    for (std::size_t i = 0; i < liveVmas.size(); ++i) {
        EXPECT_EQ(liveVmas[i]->start, replayVmas[i]->start);
        EXPECT_EQ(liveVmas[i]->end, replayVmas[i]->end);
        EXPECT_EQ(liveVmas[i]->name, replayVmas[i]->name);
        EXPECT_EQ(liveVmas[i]->prefetchable, replayVmas[i]->prefetchable);
        EXPECT_EQ(liveVmas[i]->touchedPages, replayVmas[i]->touchedPages);
    }
    EXPECT_EQ(liveSystem.appPt().nodeCount(),
              replaySystem.appPt().nodeCount());
}

/** Batch sizes that do not divide the trace length must still yield the
 *  exact stream, wrapping around at the recorded end. */
TEST(TraceReplay, NextBatchBoundaryAndWrap)
{
    const TempTrace trace("trace_batch_boundary.asaptrace");
    constexpr std::size_t recorded = 1'000;
    recordTrace(smallSpec(), trace.path(), 7, recorded);

    const std::vector<VirtAddr> lap =
        replayAddresses(trace.path(), recorded);

    // 64 does not divide 1000; request 2.5 laps in uneven batches.
    TraceReplayWorkload replay(trace.path());
    Rng unused(1);
    replay.reset(unused);
    constexpr std::size_t total = 2'500;
    std::vector<VirtAddr> batched(total);
    std::size_t at = 0;
    // Batches of 64 wrap mid-batch at both recorded ends (1000, 2000);
    // the tail is drained one address at a time.
    while (at + 64 <= total) {
        replay.nextBatch(unused, batched.data() + at, 64);
        at += 64;
    }
    while (at < total)
        batched[at++] = replay.next(unused);

    for (std::size_t i = 0; i < total; ++i) {
        ASSERT_EQ(batched[i], lap[i % recorded])
            << "position " << i << " (lap offset " << i % recorded
            << ")";
    }

    // reset() rewinds to the stream start.
    replay.reset(unused);
    EXPECT_EQ(replay.next(unused), lap[0]);
}

/**
 * The headline acceptance property: for every workload of the standard
 * suite, record → replay reproduces the live-generator run's RunStats
 * bit-for-bit. Specs are scaled down (like every simulation test) so
 * the whole suite runs in seconds; the scaling preserves each
 * workload's structure (VMA counts, mixture, churn shape).
 */
TEST(TraceReplay, RoundTripAllSuiteWorkloads)
{
    RunConfig run;
    run.warmupAccesses = 2'000;
    run.measureAccesses = 8'000;
    run.seed = 7;

    for (const WorkloadSpec &full : standardSuite()) {
        SCOPED_TRACE(full.name);
        const WorkloadSpec spec = scaledDown(full, 64);
        const TempTrace trace("trace_roundtrip_" + full.name +
                              ".asaptrace");
        recordTrace(spec, trace.path(), run.seed,
                    run.warmupAccesses + run.measureAccesses);
        const WorkloadSpec replay = traceSpec(trace.path());

        const EnvironmentOptions options;
        const MachineConfig machine;
        const RunStats live = runFresh(spec, options, machine, run);
        const RunStats replayed = runFresh(replay, options, machine, run);
        expectStatsEqual(golden::flatten(live),
                         golden::flatten(replayed));
        EXPECT_EQ(live.accesses, run.measureAccesses);
    }
}
