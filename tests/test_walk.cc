/**
 * @file
 * Unit tests for src/walk + src/core: PWCs, the 1D walker, and ASAP
 * prefetching (range registers + engine + overlap semantics).
 */

#include <gtest/gtest.h>

#include "core/asap_engine.hh"
#include "core/descriptor_builder.hh"
#include "core/range_registers.hh"
#include "mem/hierarchy.hh"
#include "os/address_space.hh"
#include "os/buddy_allocator.hh"
#include "os/pt_allocators.hh"
#include "walk/pwc.hh"
#include "walk/walker.hh"

using namespace asap;

// ---------------------------------------------------------------------
// Page walk caches
// ---------------------------------------------------------------------

TEST(Pwc, MissOnEmpty)
{
    PageWalkCaches pwc;
    EXPECT_FALSE(pwc.lookupDeepest(0x1000).valid());
}

TEST(Pwc, DeepestHitWins)
{
    PageWalkCaches pwc;
    const VirtAddr va = 0x7f0000123000;
    pwc.insert(4, va, 100);
    pwc.insert(3, va, 200);
    pwc.insert(2, va, 300);
    const auto hit = pwc.lookupDeepest(va);
    ASSERT_TRUE(hit.valid());
    EXPECT_EQ(hit.level, 2u);
    EXPECT_EQ(hit.childPfn, 300u);
}

TEST(Pwc, FallsBackToShallowerLevels)
{
    PageWalkCaches pwc;
    const VirtAddr va = 0x7f0000123000;
    pwc.insert(4, va, 100);
    const auto hit = pwc.lookupDeepest(va);
    ASSERT_TRUE(hit.valid());
    EXPECT_EQ(hit.level, 4u);
    EXPECT_EQ(hit.childPfn, 100u);
}

TEST(Pwc, TagGranularityPerLevel)
{
    PageWalkCaches pwc;
    pwc.insert(2, 0, 42);
    // Same 2MB region hits; the next 2MB region does not.
    EXPECT_TRUE(pwc.lookupDeepest(0x1fffff).valid());
    EXPECT_FALSE(pwc.lookupDeepest(0x200000).valid());
}

TEST(Pwc, CapacityEviction)
{
    // PL4 cache has 2 entries: the third insert evicts the LRU.
    PageWalkCaches pwc;
    pwc.insert(4, 0ull << 39, 1);
    pwc.insert(4, 1ull << 39, 2);
    pwc.lookupDeepest(0ull << 39);          // refresh entry 0
    pwc.insert(4, 2ull << 39, 3);           // evicts entry 1
    EXPECT_TRUE(pwc.lookupDeepest(0ull << 39).valid());
    EXPECT_FALSE(pwc.lookupDeepest(1ull << 39).valid());
    EXPECT_TRUE(pwc.lookupDeepest(2ull << 39).valid());
}

TEST(Pwc, FlushClears)
{
    PageWalkCaches pwc;
    pwc.insert(2, 0x1000, 5);
    pwc.flush();
    EXPECT_FALSE(pwc.lookupDeepest(0x1000).valid());
}

TEST(Pwc, ScaledConfigDoublesEntries)
{
    const PwcConfig base;
    const PwcConfig doubled = base.scaled(2);
    EXPECT_EQ(doubled.level[2].entries, 64u);
    EXPECT_EQ(doubled.level[3].entries, 8u);
    EXPECT_EQ(doubled.level[4].entries, 4u);
}

TEST(Pwc, PaperGeometry)
{
    const PwcConfig config;
    EXPECT_EQ(config.latency, 2u);
    EXPECT_EQ(config.level[2].entries, 32u);    // PL2: 32 entries 4-way
    EXPECT_EQ(config.level[2].ways, 4u);
    EXPECT_EQ(config.level[3].entries, 4u);     // PL3: 4, fully assoc
    EXPECT_EQ(config.level[4].entries, 2u);     // PL4: 2, fully assoc
}

// ---------------------------------------------------------------------
// 1D walker
// ---------------------------------------------------------------------

namespace
{

struct WalkFixture : public ::testing::Test
{
    WalkFixture()
        : buddy(1 << 16), allocator(buddy), pt(allocator), mem(), pwc(),
          walker(pt, mem, pwc)
    {}

    BuddyAllocator buddy;
    BuddyPtAllocator allocator;
    PageTable pt;
    MemoryHierarchy mem;
    PageWalkCaches pwc;
    PageWalker walker;
};

} // namespace

TEST_F(WalkFixture, ColdWalkIsFourDramAccesses)
{
    pt.map(0x1000, 0x42);
    const WalkResult result = walker.walk(0x1000, 0);
    EXPECT_FALSE(result.fault);
    EXPECT_EQ(result.translation.pfn, 0x42u);
    EXPECT_EQ(result.latency, 4 * mem.config().memLatency);
    for (unsigned level = 1; level <= 4; ++level) {
        EXPECT_TRUE(result.requested[level]);
        EXPECT_EQ(result.servedBy[level], MemLevel::Dram);
    }
}

TEST_F(WalkFixture, SecondWalkUsesPwcAndL1)
{
    pt.map(0x1000, 0x42);
    walker.walk(0x1000, 0);
    // PL2 entry now cached in PWC: only the PL1 access remains, and
    // its line sits in L1-D.
    const WalkResult result = walker.walk(0x1000, 1000);
    EXPECT_EQ(result.latency, pwc.latency() + mem.config().l1d.latency);
    EXPECT_EQ(result.servedBy[4], MemLevel::Pwc);
    EXPECT_EQ(result.servedBy[3], MemLevel::Pwc);
    EXPECT_EQ(result.servedBy[2], MemLevel::Pwc);
    EXPECT_EQ(result.servedBy[1], MemLevel::L1D);
}

TEST_F(WalkFixture, FaultOnUnmappedAddress)
{
    const WalkResult result = walker.walk(0x1000, 0);
    EXPECT_TRUE(result.fault);
    EXPECT_EQ(walker.faults(), 1u);
    // Only the root level was requested (its entry is non-present).
    EXPECT_TRUE(result.requested[4]);
    EXPECT_FALSE(result.requested[1]);
}

TEST_F(WalkFixture, PartialFaultWalksDownToMissingLevel)
{
    pt.map(0x1000, 0x42);
    // 2MB away: PL2 entry exists, PL1 entry missing.
    const WalkResult result = walker.walk(0x1000 + (2ull << 20), 0);
    EXPECT_TRUE(result.fault);
    EXPECT_TRUE(result.requested[2]);
}

TEST_F(WalkFixture, HugePageWalkStopsAtPl2)
{
    pt.map(0x400000, 0x4000, /*leafLevel=*/2);
    const WalkResult result = walker.walk(0x400000, 0);
    EXPECT_FALSE(result.fault);
    EXPECT_EQ(result.translation.leafLevel, 2u);
    EXPECT_TRUE(result.requested[2]);
    EXPECT_FALSE(result.requested[1]);   // no PL1 access for 2MB pages
    EXPECT_EQ(result.latency, 3 * mem.config().memLatency);
}

TEST_F(WalkFixture, TranslationMatchesFunctionalLookup)
{
    Rng rng(3);
    for (int i = 0; i < 50; ++i) {
        const VirtAddr va = rng.below(1ull << 30) & ~pageOffsetMask;
        pt.map(va, 1000 + static_cast<Pfn>(i));
        const WalkResult result = walker.walk(va | 0x123, 0);
        const auto expect = pt.lookup(va);
        ASSERT_TRUE(expect.has_value());
        EXPECT_EQ(result.translation.pfn, expect->pfn);
    }
}

TEST_F(WalkFixture, WalkCountsTracked)
{
    pt.map(0x1000, 1);
    walker.walk(0x1000, 0);
    walker.walk(0x1000, 10);
    EXPECT_EQ(walker.walks(), 2u);
}

// ---------------------------------------------------------------------
// Range registers + ASAP engine
// ---------------------------------------------------------------------

TEST(RangeRegisters, LookupMatchesContainingVma)
{
    RangeRegisterFile registers(4);
    VmaDescriptor descriptor;
    descriptor.start = 0x10000;
    descriptor.end = 0x20000;
    ASSERT_TRUE(registers.install(descriptor));
    EXPECT_NE(registers.lookup(0x10000), nullptr);
    EXPECT_NE(registers.lookup(0x1ffff), nullptr);
    EXPECT_EQ(registers.lookup(0x20000), nullptr);
    EXPECT_EQ(registers.hits(), 2u);
    EXPECT_EQ(registers.lookups(), 3u);
}

TEST(RangeRegisters, CapacityBounded)
{
    RangeRegisterFile registers(2);
    VmaDescriptor d;
    d.start = 0;
    d.end = 0x1000;
    EXPECT_TRUE(registers.install(d));
    d.start = 0x2000;
    d.end = 0x3000;
    EXPECT_TRUE(registers.install(d));
    d.start = 0x4000;
    d.end = 0x5000;
    EXPECT_FALSE(registers.install(d));
    EXPECT_EQ(registers.size(), 2u);
}

TEST(RangeRegisters, LevelDescriptorArithmetic)
{
    LevelDescriptor ld;
    ld.valid = true;
    ld.level = 1;
    ld.vaBase = 0x10000000;
    ld.basePa = 0x5000000;
    // Page k within the VMA -> entry at base + k*8.
    EXPECT_EQ(ld.entryAddrOf(0x10000000), 0x5000000u);
    EXPECT_EQ(ld.entryAddrOf(0x10001000), 0x5000008u);
    EXPECT_EQ(ld.entryAddrOf(0x10000000 + 511 * pageSize),
              0x5000000u + 511 * 8);
    // PL2: one entry per 2MB.
    ld.level = 2;
    EXPECT_EQ(ld.entryAddrOf(0x10000000 + 2_MiB), 0x5000008u);
}

namespace
{

/** Full native ASAP stack over a real address space. */
struct AsapWalkFixture : public ::testing::Test
{
    AsapWalkFixture()
        : buddy(1 << 16), asap(buddy, {1, 2}),
          space(buddy, asap, AddressSpaceConfig{}), registers(16)
    {
        space.addObserver(&asap);
        vmaId = space.mmap(32_MiB, "heap", true);
        base = space.vmas().byId(vmaId)->start;
        for (unsigned i = 0; i < 16; ++i)
            space.touch(base + static_cast<VirtAddr>(i) * 2_MiB);
        installDescriptors(registers,
                           buildVmaDescriptors(space.vmas(), asap));
    }

    BuddyAllocator buddy;
    AsapPtAllocator asap;
    AddressSpace space;
    RangeRegisterFile registers;
    std::uint64_t vmaId = 0;
    VirtAddr base = 0;
};

} // namespace

TEST_F(AsapWalkFixture, DescriptorsBuiltForPrefetchableVma)
{
    EXPECT_EQ(registers.size(), 1u);
    const VmaDescriptor *descriptor = registers.lookup(base);
    ASSERT_NE(descriptor, nullptr);
    EXPECT_TRUE(descriptor->levels[1].valid);
    EXPECT_TRUE(descriptor->levels[2].valid);
    EXPECT_FALSE(descriptor->levels[3].valid);
}

TEST_F(AsapWalkFixture, DescriptorComputesActualPteAddress)
{
    const VmaDescriptor *descriptor = registers.lookup(base);
    Rng rng(7);
    for (int i = 0; i < 100; ++i) {
        const VirtAddr va = base + rng.below(32_MiB);
        space.touch(va);
        const auto t = space.translate(alignDown(va, pageSize));
        ASSERT_TRUE(t.has_value());
        EXPECT_EQ(descriptor->levels[1].entryAddrOf(va), t->pteAddr);
    }
}

TEST_F(AsapWalkFixture, EnginePrefetchShortensWalk)
{
    MemoryHierarchy mem;
    PageWalkCaches pwcBase, pwcAsap;
    AsapEngine engine(registers, mem, AsapConfig::p1p2());

    // Baseline walk, cold caches.
    MemoryHierarchy memBase;
    PageWalker baseline(space.pageTable(), memBase, pwcBase);
    const Cycles baseLatency = baseline.walk(base + 0x1000, 0).latency;

    PageWalker accelerated(space.pageTable(), mem, pwcAsap, &engine);
    const Cycles asapLatency = accelerated.walk(base + 0x1000, 0).latency;

    EXPECT_LT(asapLatency, baseLatency);
    EXPECT_GE(engine.issued(), 2u);
    // Cold 4-level walk with P1+P2: PL4 and PL3 are serial DRAM
    // accesses; both prefetches complete during those ~382 cycles, so
    // PL2 and PL1 are exposed as L1 hits (Figure 4b).
    EXPECT_EQ(asapLatency,
              2 * mem.config().memLatency +
                  2 * mem.config().l1d.latency);
}

TEST_F(AsapWalkFixture, PrefetchedWalkYieldsSameTranslation)
{
    // The paper's safety property: ASAP never changes what the walker
    // returns, because the walk still validates everything.
    MemoryHierarchy mem;
    PageWalkCaches pwc;
    AsapEngine engine(registers, mem, AsapConfig::p1p2());
    PageWalker walker(space.pageTable(), mem, pwc, &engine);
    Rng rng(11);
    for (int i = 0; i < 200; ++i) {
        const VirtAddr va = base + rng.below(32_MiB);
        space.touch(va);
        const WalkResult result = walker.walk(va, i * 50);
        const auto expect = space.translate(alignDown(va, pageSize));
        ASSERT_TRUE(expect.has_value());
        EXPECT_FALSE(result.fault);
        EXPECT_EQ(result.translation.pfn, expect->pfn);
    }
}

TEST_F(AsapWalkFixture, EngineMissesOutsideTrackedRanges)
{
    MemoryHierarchy mem;
    AsapEngine engine(registers, mem, AsapConfig::p1());
    engine.onWalkStart(0xdead0000, 0);   // outside every VMA
    EXPECT_EQ(engine.triggers(), 1u);
    EXPECT_EQ(engine.rangeHits(), 0u);
    EXPECT_EQ(engine.issued(), 0u);
}

TEST_F(AsapWalkFixture, DisabledEngineDoesNothing)
{
    MemoryHierarchy mem;
    AsapEngine engine(registers, mem, AsapConfig::off());
    engine.onWalkStart(base + 0x1000, 0);
    EXPECT_EQ(engine.triggers(), 0u);
    EXPECT_EQ(mem.prefetchesIssued(), 0u);
}

TEST_F(AsapWalkFixture, P1OnlyPrefetchesOneLevel)
{
    MemoryHierarchy mem;
    AsapEngine engine(registers, mem, AsapConfig::p1());
    engine.onWalkStart(base + 0x1000, 0);
    EXPECT_EQ(engine.attempted(), 1u);
    AsapEngine engine2(registers, mem, AsapConfig::p1p2());
    engine2.onWalkStart(base + 24_MiB + 0x3000, 0);
    EXPECT_EQ(engine2.attempted(), 2u);
}

TEST_F(AsapWalkFixture, FaultingWalkStillPrefetches)
{
    // Section 3.7.1: prefetches accelerate fault detection too.
    MemoryHierarchy mem;
    PageWalkCaches pwc;
    AsapEngine engine(registers, mem, AsapConfig::p1p2());
    PageWalker walker(space.pageTable(), mem, pwc, &engine);
    // An untouched page inside the VMA: its PL1 entry is missing.
    const VirtAddr va = base + 3 * 2_MiB + 0x5000;
    const WalkResult result = walker.walk(va, 0);
    EXPECT_TRUE(result.fault);
    EXPECT_GE(engine.attempted(), 1u);
}

/** Property: with random hole fractions, prefetched walks are always
 *  correct (holes only lose acceleration, never correctness). */
class AsapHoleProperty : public ::testing::TestWithParam<double>
{};

TEST_P(AsapHoleProperty, HolesNeverBreakWalks)
{
    BuddyAllocator buddy(1 << 16);
    AsapPtAllocator asap(buddy, {1, 2});
    asap.setHoleFraction(GetParam(), 99);
    AddressSpace space(buddy, asap, AddressSpaceConfig{});
    space.addObserver(&asap);
    const auto id = space.mmap(16_MiB, "heap", true);
    const VirtAddr base = space.vmas().byId(id)->start;
    Rng rng(17);
    for (int i = 0; i < 64; ++i)
        space.touch(base + rng.below(16_MiB));

    RangeRegisterFile registers(16);
    installDescriptors(registers, buildVmaDescriptors(space.vmas(), asap));
    MemoryHierarchy mem;
    PageWalkCaches pwc;
    AsapEngine engine(registers, mem, AsapConfig::p1p2());
    PageWalker walker(space.pageTable(), mem, pwc, &engine);
    Rng rng2(17);
    for (int i = 0; i < 64; ++i) {
        const VirtAddr va = base + rng2.below(16_MiB);
        const WalkResult result = walker.walk(va, i * 100);
        const auto expect = space.translate(alignDown(va, pageSize));
        ASSERT_TRUE(expect.has_value());
        EXPECT_FALSE(result.fault);
        EXPECT_EQ(result.translation.pfn, expect->pfn);
    }
}

INSTANTIATE_TEST_SUITE_P(HoleFractions, AsapHoleProperty,
                         ::testing::Values(0.0, 0.1, 0.3, 0.5, 0.9, 1.0));
