/**
 * @file
 * The parallel-replay equivalence suite (src/sim/parallel_replay.hh)
 * plus the SampleStat pooled-moments merge regression tests.
 *
 * The mode's contract, pinned bit-for-bit here:
 *  - one shard == plain serial replay, across every RunStats field
 *    including histogram buckets/percentiles, dyn* counters and the
 *    registered counter snapshot;
 *  - for any shard count — including counts that do not divide the
 *    measure-access total — the merged result is independent of the
 *    worker-thread count;
 *  - generator workloads and dynamic (OS-event) traces are rejected
 *    with InvalidArgument, not silently mis-sharded.
 */

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "sim/environment.hh"
#include "sim/parallel_replay.hh"
#include "trace/format.hh"
#include "trace/trace_file.hh"
#include "workloads/trace.hh"

#include "golden_scenarios.hh"

namespace asap
{
namespace
{

/** Measure total deliberately not divisible by 2, 4 or 7. */
constexpr std::uint64_t measureTotal = 16'001;

RunConfig
replayRunConfig()
{
    RunConfig run = golden::goldenRunConfig(false);
    run.measureAccesses = measureTotal;
    return run;
}

/** Record the golden workload once per test binary. */
const std::string &
goldenTracePath()
{
    static const std::string path = [] {
        const std::string p = "parallel_replay_golden.trc";
        const RunConfig run = replayRunConfig();
        recordTrace(golden::goldenSpec(), p, run.seed,
                    run.warmupAccesses + run.measureAccesses);
        return p;
    }();
    return path;
}

void
expectHistogramEq(const obs::Histogram &got, const obs::Histogram &want)
{
    EXPECT_EQ(got.count(), want.count());
    EXPECT_EQ(got.sum(), want.sum());
    for (std::size_t i = 0; i < obs::Histogram::numBuckets; ++i)
        EXPECT_EQ(got.bucketCount(i), want.bucketCount(i));
    EXPECT_EQ(got.p50(), want.p50());
    EXPECT_EQ(got.p90(), want.p90());
    EXPECT_EQ(got.p99(), want.p99());
    EXPECT_EQ(got.p999(), want.p999());
}

void
expectSampleStatEq(const SampleStat &got, const SampleStat &want)
{
    EXPECT_EQ(got.count(), want.count());
    EXPECT_EQ(got.sum(), want.sum());
    EXPECT_EQ(got.min(), want.min());
    EXPECT_EQ(got.max(), want.max());
    EXPECT_EQ(got.sumSquaresHi(), want.sumSquaresHi());
    EXPECT_EQ(got.sumSquaresLo(), want.sumSquaresLo());
}

/** Every deterministic RunStats field, bit-for-bit. */
void
expectRunStatsEq(const RunStats &got, const RunStats &want)
{
    EXPECT_EQ(got.accesses, want.accesses);
    EXPECT_EQ(got.tlbL1Hits, want.tlbL1Hits);
    EXPECT_EQ(got.tlbL2Hits, want.tlbL2Hits);
    EXPECT_EQ(got.tlbMisses, want.tlbMisses);
    EXPECT_EQ(got.faults, want.faults);
    expectSampleStatEq(got.walkLatency, want.walkLatency);
    for (unsigned level = 0; level < 6; ++level) {
        SCOPED_TRACE(level);
        EXPECT_EQ(got.levelDist[level].total(),
                  want.levelDist[level].total());
        for (std::size_t l = 0; l < numMemLevels; ++l) {
            EXPECT_EQ(
                got.levelDist[level].count(static_cast<MemLevel>(l)),
                want.levelDist[level].count(static_cast<MemLevel>(l)));
        }
        expectHistogramEq(got.levelHist[level], want.levelHist[level]);
    }
    expectHistogramEq(got.walkHist, want.walkHist);
    expectHistogramEq(got.dataHist, want.dataHist);
    EXPECT_EQ(got.totalCycles, want.totalCycles);
    EXPECT_EQ(got.walkCycles, want.walkCycles);
    EXPECT_EQ(got.dataCycles, want.dataCycles);
    EXPECT_EQ(got.computeCycles, want.computeCycles);
    EXPECT_EQ(got.appAsap.triggers, want.appAsap.triggers);
    EXPECT_EQ(got.appAsap.rangeHits, want.appAsap.rangeHits);
    EXPECT_EQ(got.appAsap.attempted, want.appAsap.attempted);
    EXPECT_EQ(got.appAsap.issued, want.appAsap.issued);
    EXPECT_EQ(got.hostAsap.issued, want.hostAsap.issued);
    EXPECT_EQ(got.dyn.events, want.dyn.events);
    EXPECT_EQ(got.dyn.minorFaults, want.dyn.minorFaults);
    EXPECT_EQ(got.dyn.tlbInvalidated, want.dyn.tlbInvalidated);
    ASSERT_EQ(got.counters.size(), want.counters.size());
    for (std::size_t i = 0; i < got.counters.size(); ++i) {
        EXPECT_EQ(got.counters[i].first, want.counters[i].first);
        EXPECT_EQ(got.counters[i].second, want.counters[i].second)
            << got.counters[i].first;
    }
}

/**
 * One shard must reproduce a plain serial replay bit-for-bit: the seek
 * to the warmup boundary is positionally a no-op. Covered for two
 * structurally distinct machines (ASAP engines on; clustered L2).
 */
TEST(ParallelReplay, OneShardBitIdenticalToSerial)
{
    const WorkloadSpec spec = traceSpec(goldenTracePath());
    const RunConfig run = replayRunConfig();

    for (const golden::Scenario &scenario : golden::goldenScenarios()) {
        if (scenario.name != "native_asap" &&
            scenario.name != "clustered_l2")
            continue;
        SCOPED_TRACE(scenario.name);

        Environment env(spec, scenario.env);
        const RunStats serial = env.run(scenario.machine, run);

        ParallelReplayOptions options;
        options.shards = 1;
        options.threads = 2;
        StatusOr<RunStats> merged = runParallelReplay(
            spec, scenario.env, scenario.machine, run, options);
        ASSERT_TRUE(merged.ok()) << merged.status().toString();
        expectRunStatsEq(*merged, serial);
    }
}

/**
 * The merged result is a deterministic function of the shard count
 * alone: thread counts (1 vs many) must not change a bit, even when
 * the shard count does not divide the measure total.
 */
TEST(ParallelReplay, ThreadCountInvariant)
{
    const WorkloadSpec spec = traceSpec(goldenTracePath());
    const RunConfig run = replayRunConfig();
    const golden::Scenario scenario = golden::goldenScenarios()[1];
    ASSERT_EQ(scenario.name, "native_asap");

    for (unsigned shards : {2u, 4u, 7u}) {
        SCOPED_TRACE(shards);
        EXPECT_NE(measureTotal % shards, 0u);

        ParallelReplayOptions serial1;
        serial1.shards = shards;
        serial1.threads = 1;
        StatusOr<RunStats> one = runParallelReplay(
            spec, scenario.env, scenario.machine, run, serial1);
        ASSERT_TRUE(one.ok()) << one.status().toString();

        ParallelReplayOptions wide;
        wide.shards = shards;
        wide.threads = 4;
        StatusOr<RunStats> many = runParallelReplay(
            spec, scenario.env, scenario.machine, run, wide);
        ASSERT_TRUE(many.ok()) << many.status().toString();

        expectRunStatsEq(*many, *one);

        // Slices cover the measure phase exactly once.
        EXPECT_EQ(one->accesses, measureTotal);
        EXPECT_EQ(one->computeCycles,
                  measureTotal * golden::goldenSpec().cyclesPerAccess);
        EXPECT_EQ(one->tlbL1Hits + one->tlbL2Hits + one->tlbMisses,
                  measureTotal);
    }
}

/** Generators have no O(1) seek: reject, don't mis-shard. */
TEST(ParallelReplay, RejectsGeneratorWorkload)
{
    ParallelReplayOptions options;
    options.shards = 2;
    StatusOr<RunStats> result = runParallelReplay(
        golden::goldenSpec(), EnvironmentOptions{}, MachineConfig{},
        replayRunConfig(), options);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::InvalidArgument);
}

/** Dynamic traces' OS events depend on the whole stream prefix:
 *  sharding them is rejected up front. */
TEST(ParallelReplay, RejectsDynamicTrace)
{
    const std::string path = "parallel_replay_dynamic.trc2";
    WorkloadSpec spec = golden::goldenSpec();
    spec.dynProfile = "server";
    RecordOptions options;
    options.version = trc2Version;
    const RunConfig run = replayRunConfig();
    recordTrace(spec, path, run.seed,
                run.warmupAccesses + run.measureAccesses, options);
    {
        TraceFile trace(path);
        ASSERT_TRUE(trace.hasEventOps());
    }

    ParallelReplayOptions parallel;
    parallel.shards = 2;
    StatusOr<RunStats> result =
        runParallelReplay(traceSpec(path), EnvironmentOptions{},
                          MachineConfig{}, run, parallel);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::InvalidArgument);
    std::remove(path.c_str());
}

/** Zero shards is a caller error, not a hang. */
TEST(ParallelReplay, RejectsZeroShards)
{
    ParallelReplayOptions options;
    options.shards = 0;
    StatusOr<RunStats> result = runParallelReplay(
        traceSpec(goldenTracePath()), EnvironmentOptions{},
        MachineConfig{}, replayRunConfig(), options);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::InvalidArgument);
}

/**
 * SampleStat::merge must equal serial accumulation bit-for-bit for
 * ANY partition of the samples into shards — the property the
 * parallel-replay merge relies on. The second moment is exact 128-bit
 * integer arithmetic, so this holds with no tolerance.
 */
TEST(SampleStatMerge, MatchesSerialForUnequalPartitions)
{
    // Values with spread (squares overflow 32 bits) and duplicates.
    std::vector<std::uint64_t> samples;
    std::uint64_t x = 0x9e3779b97f4a7c15ull;
    for (int i = 0; i < 1000; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        samples.push_back(x % 5'000'000);
    }

    SampleStat serial;
    for (std::uint64_t v : samples)
        serial.sample(v);

    for (std::size_t shards : {2u, 3u, 7u}) {
        SCOPED_TRACE(shards);
        // Deliberately unequal slices: shard k gets [k*n/N, (k+1)*n/N).
        std::vector<SampleStat> parts(shards);
        for (std::size_t k = 0; k < shards; ++k) {
            const std::size_t begin = samples.size() * k / shards;
            const std::size_t end = samples.size() * (k + 1) / shards;
            for (std::size_t i = begin; i < end; ++i)
                parts[k].sample(samples[i]);
        }

        SampleStat merged;
        for (const SampleStat &part : parts)
            merged.merge(part);
        expectSampleStatEq(merged, serial);
        EXPECT_DOUBLE_EQ(merged.variance(), serial.variance());
        EXPECT_DOUBLE_EQ(merged.stddev(), serial.stddev());

        // Associativity: ((a+b)+c) == (a+(b+c)) for three-way splits.
        if (shards == 3) {
            SampleStat left = parts[0];
            left.merge(parts[1]);
            left.merge(parts[2]);
            SampleStat right = parts[1];
            right.merge(parts[2]);
            SampleStat first = parts[0];
            first.merge(right);
            expectSampleStatEq(first, left);
        }
    }
}

/** The second moment survives the journal's u64-halves round trip. */
TEST(SampleStatMerge, RestoreRoundTripsSecondMoment)
{
    SampleStat stat;
    // Large samples push sumSquares past 64 bits.
    for (int i = 0; i < 10; ++i)
        stat.sample((std::uint64_t{1} << 33) + i);
    EXPECT_GT(stat.sumSquaresHi(), 0u);

    SampleStat restored;
    restored.restore(stat.count(), stat.sum(), stat.min(), stat.max(),
                     stat.sumSquaresHi(), stat.sumSquaresLo());
    expectSampleStatEq(restored, stat);
    EXPECT_DOUBLE_EQ(restored.variance(), stat.variance());
}

} // namespace
} // namespace asap

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    const int rc = RUN_ALL_TESTS();
    std::remove("parallel_replay_golden.trc");
    return rc;
}
