/**
 * @file
 * Unit tests for src/mem: set-associative cache and the hierarchy with
 * prefetch-overlap (MSHR merge) semantics.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/hierarchy.hh"

using namespace asap;

namespace
{

CacheConfig
smallCache(std::uint64_t size = 1024, unsigned ways = 2, Cycles lat = 4)
{
    CacheConfig config;
    config.name = "test";
    config.sizeBytes = size;
    config.ways = ways;
    config.latency = lat;
    return config;
}

} // namespace

TEST(Cache, MissThenHit)
{
    Cache cache(smallCache());
    EXPECT_FALSE(cache.access(0x1000));
    cache.insert(0x1000);
    EXPECT_TRUE(cache.access(0x1000));
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(Cache, SameLineDifferentOffsetHits)
{
    Cache cache(smallCache());
    cache.insert(0x1000);
    EXPECT_TRUE(cache.access(0x103f));   // same 64B line
    EXPECT_FALSE(cache.access(0x1040));  // next line
}

TEST(Cache, LruEvictionOrder)
{
    // 1KB / 2-way / 64B lines: 8 sets. Lines 0, 8, 16 (in units of
    // lines) map to set 0.
    Cache cache(smallCache(1024, 2));
    const PhysAddr a = 0 << 6, b = 8 << 6, c = 16 << 6;
    cache.insert(a);
    cache.insert(b);
    cache.access(a);        // a is now MRU
    cache.insert(c);        // evicts b (LRU)
    EXPECT_TRUE(cache.probe(a));
    EXPECT_FALSE(cache.probe(b));
    EXPECT_TRUE(cache.probe(c));
}

TEST(Cache, ProbeDoesNotPerturbLru)
{
    Cache cache(smallCache(1024, 2));
    const PhysAddr a = 0 << 6, b = 8 << 6, c = 16 << 6;
    cache.insert(a);
    cache.insert(b);
    cache.probe(a);          // must NOT refresh a
    cache.insert(c);         // evicts a (still LRU)
    EXPECT_FALSE(cache.probe(a));
    EXPECT_TRUE(cache.probe(b));
}

TEST(Cache, Invalidate)
{
    Cache cache(smallCache());
    cache.insert(0x2000);
    cache.invalidate(0x2000);
    EXPECT_FALSE(cache.probe(0x2000));
    cache.invalidate(0x3000);   // absent: no-op
}

TEST(Cache, InvalidateDoesNotShadowLaterWays)
{
    // Invalidating one line must not leave a hole that makes a still-
    // resident line in a later way invisible to the insert-path scan
    // (which stops at the first invalid way).
    Cache cache(smallCache(1024, 2));
    const PhysAddr a = 0 << 6, b = 8 << 6;
    cache.insert(a);        // way 0
    cache.insert(b);        // way 1
    cache.invalidate(a);
    // The fused access path stops its scan at the first invalid way;
    // invalidate() must have compacted the set so b is still found.
    EXPECT_TRUE(cache.accessAndFill(b));
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 0u);
    cache.insert(a);        // must land in the freed slot
    EXPECT_TRUE(cache.probe(a));
    EXPECT_TRUE(cache.probe(b));
}

TEST(Cache, InsertExistingRefreshes)
{
    Cache cache(smallCache(1024, 2));
    const PhysAddr a = 0 << 6, b = 8 << 6, c = 16 << 6;
    cache.insert(a);
    cache.insert(b);
    cache.insert(a);        // refresh, no duplicate
    cache.insert(c);        // evicts b
    EXPECT_TRUE(cache.probe(a));
    EXPECT_FALSE(cache.probe(b));
}

TEST(Cache, Reset)
{
    Cache cache(smallCache());
    cache.insert(0x1000);
    cache.reset();
    EXPECT_FALSE(cache.probe(0x1000));
    EXPECT_EQ(cache.hits(), 0u);
}

TEST(Cache, NonPow2LinesOkWithPow2Sets)
{
    // 20MiB 20-way: 327680 lines, 16384 sets — the paper's LLC.
    CacheConfig config;
    config.sizeBytes = 20_MiB;
    config.ways = 20;
    Cache cache(config);
    cache.insert(0x123456780);
    EXPECT_TRUE(cache.probe(0x123456780));
}

/** Parameterized associativity sweep: capacity is exactly size/line. */
class CacheGeometry
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, unsigned>>
{};

TEST_P(CacheGeometry, FillsToCapacityWithoutSelfEviction)
{
    const auto [size, ways] = GetParam();
    Cache cache(smallCache(size, ways));
    const std::uint64_t lines = size / lineSize;
    // Insert exactly `lines` distinct lines, one per (set, way) slot.
    for (std::uint64_t i = 0; i < lines; ++i)
        cache.insert(i << lineShift);
    for (std::uint64_t i = 0; i < lines; ++i)
        EXPECT_TRUE(cache.probe(i << lineShift)) << i;
    // One more insert into set 0 must evict something in set 0.
    cache.insert(lines << lineShift);
    EXPECT_FALSE(cache.probe(0));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CacheGeometry,
    ::testing::Values(std::make_tuple(std::uint64_t{1024}, 1u),
                      std::make_tuple(std::uint64_t{1024}, 2u),
                      std::make_tuple(std::uint64_t{4096}, 4u),
                      std::make_tuple(std::uint64_t{32768}, 8u),
                      std::make_tuple(std::uint64_t{8192}, 8u)));

TEST(Hierarchy, ColdAccessServedByDram)
{
    MemoryHierarchy mem;
    const AccessResult res = mem.access(0x100000, 0);
    EXPECT_EQ(res.servedBy, MemLevel::Dram);
    EXPECT_EQ(res.latency, mem.config().memLatency);
}

TEST(Hierarchy, FillPropagatesToAllLevels)
{
    MemoryHierarchy mem;
    mem.access(0x100000, 0);
    EXPECT_TRUE(mem.l1d().probe(0x100000));
    EXPECT_TRUE(mem.l2().probe(0x100000));
    EXPECT_TRUE(mem.llc().probe(0x100000));
    const AccessResult res = mem.access(0x100000, 200);
    EXPECT_EQ(res.servedBy, MemLevel::L1D);
    EXPECT_EQ(res.latency, mem.config().l1d.latency);
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    HierarchyConfig config;
    config.l1d.sizeBytes = 512;     // 8 lines, 8-way: one set
    config.l1d.ways = 8;
    MemoryHierarchy mem(config);
    mem.access(0, 0);
    for (int i = 1; i <= 8; ++i)
        mem.access(static_cast<PhysAddr>(i) << lineShift, 0);
    // Line 0 evicted from tiny L1 but still in L2.
    const AccessResult res = mem.access(0, 0);
    EXPECT_EQ(res.servedBy, MemLevel::L2);
    EXPECT_EQ(res.latency, config.l2.latency);
}

TEST(Hierarchy, PrefetchFillsAndRecordsInflight)
{
    MemoryHierarchy mem;
    EXPECT_TRUE(mem.prefetch(0x200000, 0));
    EXPECT_EQ(mem.prefetchesIssued(), 1u);
    EXPECT_TRUE(mem.l1d().probe(0x200000));
}

TEST(Hierarchy, PrefetchMergeExposesRemainingLatency)
{
    MemoryHierarchy mem;
    const Cycles memLat = mem.config().memLatency;
    mem.prefetch(0x200000, 0);          // completes at t=191
    // Demand access at t=100: merged, exposed latency = 91.
    const AccessResult res = mem.access(0x200000, 100);
    EXPECT_EQ(res.latency, memLat - 100);
    EXPECT_EQ(mem.prefetchMerges(), 1u);
}

TEST(Hierarchy, PrefetchCompletedBeforeDemandIsL1Hit)
{
    MemoryHierarchy mem;
    mem.prefetch(0x200000, 0);
    const AccessResult res = mem.access(0x200000, 500);
    EXPECT_EQ(res.latency, mem.config().l1d.latency);
}

TEST(Hierarchy, PrefetchMergeNeverFasterThanL1)
{
    MemoryHierarchy mem;
    mem.prefetch(0x200000, 0);
    // Demand at t=189: remaining 2 < L1 latency 4 -> clamped to 4.
    const AccessResult res = mem.access(0x200000, 189);
    EXPECT_EQ(res.latency, mem.config().l1d.latency);
}

TEST(Hierarchy, PrefetchToResidentLineIsDropped)
{
    MemoryHierarchy mem;
    mem.access(0x300000, 0);
    EXPECT_FALSE(mem.prefetch(0x300000, 10));
    EXPECT_EQ(mem.prefetchesIssued(), 0u);
}

TEST(Hierarchy, PrefetchMshrBudgetIsBestEffort)
{
    HierarchyConfig config;
    config.prefetchMshrs = 2;
    MemoryHierarchy mem(config);
    EXPECT_TRUE(mem.prefetch(0x1000000, 0));
    EXPECT_TRUE(mem.prefetch(0x2000000, 0));
    EXPECT_FALSE(mem.prefetch(0x3000000, 0));  // no MSHR available
    EXPECT_EQ(mem.prefetchesDropped(), 1u);
    // After the fills complete, MSHRs free up.
    EXPECT_TRUE(mem.prefetch(0x4000000, 1000));
}

TEST(Hierarchy, DuplicatePrefetchNotReissued)
{
    HierarchyConfig config;
    config.prefetchMshrs = 8;
    MemoryHierarchy mem(config);
    // First prefetch in-flight; the line fills L1 immediately in the
    // functional model, so the duplicate is filtered by the L1 probe.
    EXPECT_TRUE(mem.prefetch(0x5000000, 0));
    EXPECT_FALSE(mem.prefetch(0x5000000, 1));
    EXPECT_EQ(mem.prefetchesIssued(), 1u);
}

TEST(Hierarchy, NoMergePathLeavesCountersAlone)
{
    // The common demand-access case: prefetches in flight, but none
    // targeting the accessed line. The MSHR scan must neither merge
    // nor drop anything, and the in-flight set must stay intact.
    MemoryHierarchy mem;
    EXPECT_TRUE(mem.prefetch(0x1000000, 0));
    EXPECT_TRUE(mem.prefetch(0x2000000, 0));
    EXPECT_EQ(mem.inflightPrefetches(), 2u);
    const AccessResult res = mem.access(0x3000000, 10);
    EXPECT_EQ(res.servedBy, MemLevel::Dram);
    EXPECT_EQ(mem.prefetchMerges(), 0u);
    EXPECT_EQ(mem.prefetchesDropped(), 0u);
    EXPECT_EQ(mem.inflightPrefetches(), 2u);
    // The targeted line, by contrast, is merged and its slot released.
    const AccessResult hit = mem.access(0x1000000, 10);
    EXPECT_EQ(hit.latency, mem.config().memLatency - 10);
    EXPECT_EQ(mem.prefetchMerges(), 1u);
    EXPECT_EQ(mem.inflightPrefetches(), 1u);
}

TEST(Hierarchy, RetirePacksMshrFile)
{
    // Retiring completed fills during a later prefetch frees slots for
    // new prefetches without disturbing still-pending ones.
    HierarchyConfig config;
    config.prefetchMshrs = 2;
    MemoryHierarchy mem(config);
    EXPECT_TRUE(mem.prefetch(0x1000000, 0));     // done at t=191
    EXPECT_TRUE(mem.prefetch(0x2000000, 100));   // done at t=291
    EXPECT_EQ(mem.inflightPrefetches(), 2u);
    // t=200: the first fill completed; its slot must be reclaimed.
    EXPECT_TRUE(mem.prefetch(0x4000000, 200));
    EXPECT_EQ(mem.prefetchesDropped(), 0u);
    EXPECT_EQ(mem.inflightPrefetches(), 2u);
    // The still-pending second prefetch must still merge.
    const AccessResult res = mem.access(0x2000000, 250);
    EXPECT_EQ(res.latency, 291u - 250u);
    EXPECT_EQ(mem.prefetchMerges(), 1u);
}

TEST(Hierarchy, AccessPlainIgnoresInflightPrefetches)
{
    MemoryHierarchy mem;
    mem.prefetch(0x200000, 0);
    // accessPlain sees an L1 hit (prefetch filled it) with plain
    // latency — no merge bookkeeping.
    const AccessResult res = mem.accessPlain(0x200000);
    EXPECT_EQ(res.servedBy, MemLevel::L1D);
    EXPECT_EQ(mem.prefetchMerges(), 0u);
}

TEST(Hierarchy, ResetClearsEverything)
{
    MemoryHierarchy mem;
    mem.access(0x100000, 0);
    mem.prefetch(0x200000, 0);
    mem.reset();
    EXPECT_FALSE(mem.l1d().probe(0x100000));
    EXPECT_EQ(mem.prefetchesIssued(), 0u);
    const AccessResult res = mem.access(0x200000, 10);
    EXPECT_EQ(res.servedBy, MemLevel::Dram);
}

TEST(Hierarchy, PaperLatencies)
{
    // Table 5: L1 4, L2 12, LLC 40, memory 191.
    MemoryHierarchy mem;
    EXPECT_EQ(mem.config().l1d.latency, 4u);
    EXPECT_EQ(mem.config().l2.latency, 12u);
    EXPECT_EQ(mem.config().llc.latency, 40u);
    EXPECT_EQ(mem.config().memLatency, 191u);
    EXPECT_EQ(mem.config().l1d.sizeBytes, 32_KiB);
    EXPECT_EQ(mem.config().l2.sizeBytes, 256_KiB);
    EXPECT_EQ(mem.config().llc.sizeBytes, 20_MiB);
    EXPECT_EQ(mem.config().llc.ways, 20u);
}
