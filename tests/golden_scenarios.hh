/**
 * @file
 * Fixed-seed golden scenarios shared by the refactor-safety tests
 * (tests/test_sim.cc, suite Golden) and the literal generator
 * (examples/golden_dump.cpp).
 *
 * The scenarios pin the complete observable behaviour of the simulator
 * core — TLB hit/miss counts, walk-latency accumulators, per-level
 * serving distributions, cycle totals and ASAP engine counters — for
 * one small workload across the paper's structurally distinct
 * configurations. Hot-path refactors must reproduce every value
 * bit-identically; regenerate the literals with golden_dump only for
 * *intentional* model changes.
 *
 * Scenario construction deliberately bypasses Environment so that
 * ASAP_QUICK scaling cannot perturb the pinned workload.
 */

#ifndef ASAP_TESTS_GOLDEN_SCENARIOS_HH
#define ASAP_TESTS_GOLDEN_SCENARIOS_HH

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "sim/environment.hh"
#include "sim/machine.hh"
#include "sim/simulator.hh"
#include "sim/system.hh"
#include "workloads/synthetic.hh"

namespace asap::golden
{

/** The pinned workload: small enough to run in milliseconds, big enough
 *  to exercise TLB misses, walks, faults-at-warmup and prefetches. */
inline WorkloadSpec
goldenSpec()
{
    WorkloadSpec spec;
    spec.name = "golden";
    spec.paperGb = 1.0;
    spec.residentPages = 20'000;
    spec.dataVmas = 2;
    spec.smallVmas = 4;
    spec.cyclesPerAccess = 3;
    spec.windowFraction = 0.6;
    spec.windowPages = 2'000;
    spec.nearFraction = 0.1;
    spec.linesPerPage = 2;
    spec.burstContinueProb = 0.5;
    spec.machineMemBytes = 1_GiB;
    spec.guestMemBytes = 256_MiB;
    return spec;
}

struct Scenario
{
    std::string name;
    EnvironmentOptions env;
    MachineConfig machine;
    bool colocation = false;
};

/** Native / virtualized / clustered / hugepage / colocation coverage. */
inline std::vector<Scenario>
goldenScenarios()
{
    std::vector<Scenario> scenarios;

    Scenario native;
    native.name = "native";
    scenarios.push_back(native);

    Scenario nativeAsap;
    nativeAsap.name = "native_asap";
    nativeAsap.env.asapPlacement = true;
    nativeAsap.machine = makeMachineConfig(AsapConfig::p1p2());
    scenarios.push_back(nativeAsap);

    Scenario virt;
    virt.name = "virt_2d";
    virt.env.virtualized = true;
    scenarios.push_back(virt);

    Scenario hugepage;
    hugepage.name = "virt_hugepage_asap";
    hugepage.env.virtualized = true;
    hugepage.env.hostHugePages = true;
    hugepage.env.asapPlacement = true;
    hugepage.machine = makeMachineConfig(AsapConfig::p1p2(),
                                         AsapConfig::p2());
    scenarios.push_back(hugepage);

    Scenario clustered;
    clustered.name = "clustered_l2";
    clustered.machine.tlb.clusteredL2 = true;
    scenarios.push_back(clustered);

    Scenario coloc;
    coloc.name = "coloc_asap";
    coloc.env.asapPlacement = true;
    coloc.machine = makeMachineConfig(AsapConfig::p1p2());
    coloc.colocation = true;
    scenarios.push_back(coloc);

    return scenarios;
}

inline RunConfig
goldenRunConfig(bool colocation)
{
    RunConfig run;
    run.warmupAccesses = 4'000;
    run.measureAccesses = 16'000;
    run.colocation = colocation;
    run.corunnerPerAccess = 3;
    run.seed = 7;
    return run;
}

/** Run one scenario from a fresh System (no ASAP_QUICK interference). */
inline RunStats
runScenario(const Scenario &scenario)
{
    const WorkloadSpec spec = goldenSpec();
    System system(makeSystemConfig(spec, scenario.env));
    const std::unique_ptr<Workload> workload = makeWorkload(spec);
    workload->setup(system);
    Machine machine(system, scenario.machine);
    Simulator simulator(system, machine, *workload);
    return simulator.run(goldenRunConfig(scenario.colocation));
}

/** Everything the golden tests pin, flattened to integers. */
struct Expect
{
    std::uint64_t tlbL1Hits, tlbL2Hits, tlbMisses, faults;
    std::uint64_t walkCount, walkSum, walkMin, walkMax;
    std::uint64_t totalCycles, walkCycles, dataCycles, computeCycles;
    /** levelDist[1..5].total() — walk requests per PT level. */
    std::array<std::uint64_t, 5> levelTotal;
    /** levelDist[1..5].count(Pwc) and .count(Dram). */
    std::array<std::uint64_t, 5> levelPwc;
    std::array<std::uint64_t, 5> levelDram;
    std::uint64_t appTriggers, appRangeHits, appAttempted, appIssued;
    std::uint64_t hostIssued;
};

inline Expect
flatten(const RunStats &stats)
{
    Expect e{};
    e.tlbL1Hits = stats.tlbL1Hits;
    e.tlbL2Hits = stats.tlbL2Hits;
    e.tlbMisses = stats.tlbMisses;
    e.faults = stats.faults;
    e.walkCount = stats.walkLatency.count();
    e.walkSum = stats.walkLatency.sum();
    e.walkMin = stats.walkLatency.min();
    e.walkMax = stats.walkLatency.max();
    e.totalCycles = stats.totalCycles;
    e.walkCycles = stats.walkCycles;
    e.dataCycles = stats.dataCycles;
    e.computeCycles = stats.computeCycles;
    for (unsigned level = 1; level <= 5; ++level) {
        e.levelTotal[level - 1] = stats.levelDist[level].total();
        e.levelPwc[level - 1] = stats.levelDist[level].count(MemLevel::Pwc);
        e.levelDram[level - 1] =
            stats.levelDist[level].count(MemLevel::Dram);
    }
    e.appTriggers = stats.appAsap.triggers;
    e.appRangeHits = stats.appAsap.rangeHits;
    e.appAttempted = stats.appAsap.attempted;
    e.appIssued = stats.appAsap.issued;
    e.hostIssued = stats.hostAsap.issued;
    return e;
}

} // namespace asap::golden

#endif // ASAP_TESTS_GOLDEN_SCENARIOS_HH
