/**
 * @file
 * Unit tests for src/obs: histogram bucket math and percentiles,
 * merge associativity, trace-sink ring semantics and Chrome-JSON
 * export, counter-registry uniqueness — and the layer's core contract,
 * golden equivalence: attaching a trace sink (disabled or enabled)
 * must not perturb the simulated model by a single cycle.
 */

#include <cstdint>
#include <memory>

#include <gtest/gtest.h>

#include "exp/json.hh"
#include "golden_scenarios.hh"
#include "obs/histogram.hh"
#include "obs/registry.hh"
#include "obs/trace_sink.hh"
#include "common/rng.hh"

using namespace asap;
using Hist = obs::Histogram;

TEST(ObsHistogram, LinearRangeIsExact)
{
    for (std::uint64_t v = 0; v < Hist::linearBuckets; ++v) {
        EXPECT_EQ(Hist::bucketOf(v), v);
        EXPECT_EQ(Hist::bucketLow(v), v);
        EXPECT_EQ(Hist::bucketHigh(v), v);
    }
}

TEST(ObsHistogram, BucketBoundariesRoundTrip)
{
    for (std::size_t i = 0; i < Hist::numBuckets; ++i) {
        EXPECT_EQ(Hist::bucketOf(Hist::bucketLow(i)), i) << i;
        EXPECT_EQ(Hist::bucketOf(Hist::bucketHigh(i)), i) << i;
        if (i + 1 < Hist::numBuckets) {
            // Buckets tile the integers: no gap, no overlap.
            EXPECT_EQ(Hist::bucketLow(i + 1),
                      Hist::bucketHigh(i) + 1)
                << i;
        }
    }
    // The last bucket reaches the top of the uint64 range.
    EXPECT_EQ(Hist::bucketHigh(Hist::numBuckets - 1),
              ~std::uint64_t{0});
    EXPECT_EQ(Hist::bucketOf(~std::uint64_t{0}),
              Hist::numBuckets - 1);
}

TEST(ObsHistogram, BucketWidthBoundsRelativeError)
{
    // Above the linear range each octave splits into subBuckets, so
    // the bucket holding v is never wider than v / subBuckets + 1.
    for (const std::uint64_t v :
         {16ull, 100ull, 12'345ull, 1ull << 32, (1ull << 40) + 7}) {
        const std::size_t i = Hist::bucketOf(v);
        EXPECT_LE(Hist::bucketLow(i), v);
        EXPECT_GE(Hist::bucketHigh(i), v);
        EXPECT_LE(Hist::bucketHigh(i) - Hist::bucketLow(i),
                  v / Hist::subBuckets + 1);
    }
}

TEST(ObsHistogram, PercentileEmptyAndSingleSample)
{
    Hist hist;
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_EQ(hist.percentile(0.0), 0u);
    EXPECT_EQ(hist.percentile(0.5), 0u);
    EXPECT_EQ(hist.percentile(1.0), 0u);
    EXPECT_EQ(hist.mean(), 0.0);

    hist.sample(100);
    const std::uint64_t expect =
        Hist::bucketHigh(Hist::bucketOf(100));
    EXPECT_EQ(hist.count(), 1u);
    EXPECT_EQ(hist.sum(), 100u);
    EXPECT_EQ(hist.percentile(0.0), expect);
    EXPECT_EQ(hist.p50(), expect);
    EXPECT_EQ(hist.p999(), expect);
    EXPECT_EQ(hist.percentile(1.0), expect);
}

TEST(ObsHistogram, PercentileRankArithmetic)
{
    Hist hist;
    for (std::uint64_t v = 1; v <= 1000; ++v)
        hist.sample(v);
    // rank(q) = ceil(q * 1000): p50 lands on sample 500 exactly.
    EXPECT_EQ(hist.p50(),
              Hist::bucketHigh(Hist::bucketOf(500)));
    EXPECT_EQ(hist.p90(),
              Hist::bucketHigh(Hist::bucketOf(900)));
    EXPECT_EQ(hist.percentile(1.0),
              Hist::bucketHigh(Hist::bucketOf(1000)));
    // Monotone in q.
    EXPECT_LE(hist.p50(), hist.p90());
    EXPECT_LE(hist.p90(), hist.p99());
    EXPECT_LE(hist.p99(), hist.p999());
}

TEST(ObsHistogram, MergeIsAssociativeAndCommutative)
{
    Rng rng(42);
    Hist parts[3];
    for (unsigned p = 0; p < 3; ++p) {
        for (unsigned i = 0; i < 5'000; ++i)
            parts[p].sample(rng.next() >> rng.below(40));
    }

    Hist leftFold;             // (a + b) + c
    leftFold.merge(parts[0]);
    leftFold.merge(parts[1]);
    leftFold.merge(parts[2]);

    Hist rightFold;            // a + (b + c), built b+c first
    Hist bc = parts[1];
    bc.merge(parts[2]);
    rightFold.merge(bc);
    rightFold.merge(parts[0]);      // ... and commuted

    EXPECT_EQ(leftFold.count(), rightFold.count());
    EXPECT_EQ(leftFold.sum(), rightFold.sum());
    for (std::size_t i = 0; i < Hist::numBuckets; ++i)
        EXPECT_EQ(leftFold.bucketCount(i), rightFold.bucketCount(i));
    EXPECT_EQ(leftFold.p50(), rightFold.p50());
    EXPECT_EQ(leftFold.p999(), rightFold.p999());
}

TEST(TraceSink, DisabledSinkRecordsNothing)
{
    obs::TraceSink sink(16);
    EXPECT_FALSE(sink.enabled());   // attach-but-disabled is the default
    sink.walkSpan(100, 30, 0x1000, false, 0);
    sink.fault(200, 0x2000);
    EXPECT_EQ(sink.size(), 0u);
    EXPECT_EQ(sink.emitted(), 0u);
}

TEST(TraceSink, RingOverwritesOldestAndCountsDrops)
{
    obs::TraceSink sink(4);
    sink.setEnabled(true);
    for (std::uint64_t i = 0; i < 6; ++i)
        sink.fault(/*at=*/100 + i, /*va=*/0x1000 * i);
    EXPECT_EQ(sink.size(), 4u);
    EXPECT_EQ(sink.emitted(), 6u);
    EXPECT_EQ(sink.dropped(), 2u);
    // Chronological order: the two oldest events were overwritten.
    for (std::size_t i = 0; i < sink.size(); ++i)
        EXPECT_EQ(sink.at(i).start, 100u + 2 + i) << i;
    EXPECT_EQ(sink.countOf(obs::EventKind::Fault), 4u);

    sink.clear();
    EXPECT_EQ(sink.size(), 0u);
    EXPECT_EQ(sink.emitted(), 0u);
}

TEST(TraceSink, ChromeJsonParsesBack)
{
    obs::TraceSink sink(64);
    sink.setEnabled(true);
    sink.walkSpan(10, 40, 0x7f0000001000, false,
                  obs::packWalkLevel(
                      obs::packWalkLevel(0, 4, /*Pwc=*/0), 1,
                      /*Dram=*/4));
    sink.nestedWalkSpan(60, 200, 0x7f0000002000, true, 24);
    sink.fault(60, 0x7f0000002000);
    sink.asapTrigger(obs::Track::AsapApp, 10, 0x7f0000001000, true);
    sink.asapIssue(obs::Track::AsapApp, 10, 2, 0x5000, true);
    sink.prefetchFill(12, 212, 0x5000);
    sink.prefetchMerge(100, 0x5000, 30);
    sink.osEvent(300, /*Munmap=*/1, 0x7f0000002000, 16);
    sink.shootdown(300, 5, 3);

    const auto doc = exp::Json::parse(sink.chromeJson());
    ASSERT_TRUE(doc.has_value());
    const exp::Json *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    // All nine events plus one thread_name metadata entry per track.
    EXPECT_EQ(events->items().size(),
              9u + static_cast<std::size_t>(obs::Track::NumTracks));
    unsigned spans = 0, instants = 0, meta = 0;
    for (const exp::Json &event : events->items()) {
        const exp::Json *ph = event.find("ph");
        ASSERT_NE(ph, nullptr);
        if (ph->asString() == "X")
            ++spans;
        else if (ph->asString() == "i")
            ++instants;
        else if (ph->asString() == "M")
            ++meta;
        const exp::Json *ts = event.find("ts");
        if (ph->asString() != "M")
            ASSERT_NE(ts, nullptr);
    }
    EXPECT_EQ(spans, 3u);      // walk, nested walk, prefetch fill
    EXPECT_EQ(instants, 6u);
    EXPECT_EQ(meta, static_cast<unsigned>(obs::Track::NumTracks));
    const exp::Json *other = doc->find("otherData");
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(other->find("emitted")->asNumber(), 9.0);
    EXPECT_EQ(other->find("dropped")->asNumber(), 0.0);
}

TEST(Registry, SnapshotKeepsRegistrationOrder)
{
    obs::Registry registry;
    registry.add("b.second", [] { return std::uint64_t{2}; });
    registry.add("a.first", [] { return std::uint64_t{1}; });
    const auto snapshot = registry.snapshot();
    ASSERT_EQ(snapshot.size(), 2u);
    EXPECT_EQ(snapshot[0].first, "b.second");
    EXPECT_EQ(snapshot[0].second, 2u);
    EXPECT_EQ(snapshot[1].first, "a.first");
    EXPECT_EQ(snapshot[1].second, 1u);
}

TEST(Registry, DuplicateNamePanics)
{
    obs::Registry registry;
    registry.add("tlb.lookups", [] { return std::uint64_t{1}; });
    EXPECT_DEATH(registry.add("tlb.lookups",
                              [] { return std::uint64_t{2}; }),
                 "duplicate counter");
}

namespace
{

/** golden::runScenario with a trace sink attached to the machine. */
RunStats
runScenarioWithSink(const golden::Scenario &scenario,
                    obs::TraceSink &sink)
{
    const WorkloadSpec spec = golden::goldenSpec();
    System system(makeSystemConfig(spec, scenario.env));
    const std::unique_ptr<Workload> workload = makeWorkload(spec);
    workload->setup(system);
    Machine machine(system, scenario.machine);
    machine.attachTraceSink(&sink);
    Simulator simulator(system, machine, *workload);
    return simulator.run(golden::goldenRunConfig(scenario.colocation));
}

void
expectEqual(const golden::Expect &a, const golden::Expect &b,
            const std::string &what)
{
    EXPECT_EQ(a.tlbL1Hits, b.tlbL1Hits) << what;
    EXPECT_EQ(a.tlbL2Hits, b.tlbL2Hits) << what;
    EXPECT_EQ(a.tlbMisses, b.tlbMisses) << what;
    EXPECT_EQ(a.faults, b.faults) << what;
    EXPECT_EQ(a.walkCount, b.walkCount) << what;
    EXPECT_EQ(a.walkSum, b.walkSum) << what;
    EXPECT_EQ(a.walkMin, b.walkMin) << what;
    EXPECT_EQ(a.walkMax, b.walkMax) << what;
    EXPECT_EQ(a.totalCycles, b.totalCycles) << what;
    EXPECT_EQ(a.walkCycles, b.walkCycles) << what;
    EXPECT_EQ(a.dataCycles, b.dataCycles) << what;
    EXPECT_EQ(a.computeCycles, b.computeCycles) << what;
    for (unsigned i = 0; i < 5; ++i) {
        EXPECT_EQ(a.levelTotal[i], b.levelTotal[i]) << what << " PL"
                                                    << i + 1;
        EXPECT_EQ(a.levelPwc[i], b.levelPwc[i]) << what;
        EXPECT_EQ(a.levelDram[i], b.levelDram[i]) << what;
    }
    EXPECT_EQ(a.appTriggers, b.appTriggers) << what;
    EXPECT_EQ(a.appRangeHits, b.appRangeHits) << what;
    EXPECT_EQ(a.appAttempted, b.appAttempted) << what;
    EXPECT_EQ(a.appIssued, b.appIssued) << what;
    EXPECT_EQ(a.hostIssued, b.hostIssued) << what;
}

} // namespace

/**
 * The observability invariant: the six pinned golden scenarios produce
 * bit-identical RunStats with a sink attached and idle, AND with the
 * sink actively recording — observation must never perturb the model.
 * (Styled after tests/test_dyn.cc's attached-but-idle subsystem test;
 * the pinned literals themselves live in tests/test_sim.cc.)
 */
TEST(GoldenEquivalence, SinkAttachedDisabledAndEnabled)
{
    for (const golden::Scenario &scenario : golden::goldenScenarios()) {
        const golden::Expect baseline =
            golden::flatten(golden::runScenario(scenario));

        obs::TraceSink idle(1u << 16);   // attached, never enabled
        expectEqual(baseline,
                    golden::flatten(runScenarioWithSink(scenario, idle)),
                    scenario.name + "/disabled");
        EXPECT_EQ(idle.emitted(), 0u) << scenario.name;

        obs::TraceSink active(1u << 16);
        active.setEnabled(true);
        const RunStats traced = runScenarioWithSink(scenario, active);
        expectEqual(baseline, golden::flatten(traced),
                    scenario.name + "/enabled");
        // The run TLB-misses, so an enabled sink must have seen walks.
        EXPECT_GT(active.emitted(), 0u) << scenario.name;
        const bool nested = scenario.env.virtualized;
        EXPECT_GT(active.countOf(nested
                                     ? obs::EventKind::NestedWalkSpan
                                     : obs::EventKind::WalkSpan),
                  0u)
            << scenario.name;

        // The walk histogram mirrors the pinned SampleStat exactly.
        EXPECT_EQ(traced.walkHist.count(), traced.walkLatency.count())
            << scenario.name;
        EXPECT_EQ(traced.walkHist.sum(), traced.walkLatency.sum())
            << scenario.name;
        EXPECT_GE(traced.walkHist.percentile(1.0),
                  traced.walkLatency.max())
            << scenario.name;
    }
}
