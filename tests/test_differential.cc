/**
 * @file
 * Differential model checking: randomized machine configurations and
 * address streams cross-check three independent implementations of
 * address translation against each other —
 *
 *   1. the optimized hot path: Machine::translate through the TLBs,
 *      PWCs (cached slab child indices) and the slab-index page walk;
 *   2. the functional slab lookup: PageTable::lookup / AddressSpace::
 *      translate (index-chased, no latency modeling);
 *   3. a naive reference translator written against the off-hot-path
 *      frame-keyed interface (rootPfn()/readEntry()/node(), i.e. the
 *      pfn -> slab-index hash), mirroring the x86 walk definition with
 *      no shared traversal code.
 *
 * Any divergence — a stale PWC child index, a slab index not matching
 * its frame, a TLB entry outliving its mapping, a miscomposed nested
 * translation — fails loudly with the iteration's seed. 200 seeded
 * iterations run under ctest (and under ASan/UBSan in CI), giving
 * future hot-path refactors a randomized safety net beyond the six
 * pinned Golden configurations.
 */

#include <vector>

#include <gtest/gtest.h>

#include "sim/environment.hh"
#include "sim/machine.hh"
#include "sim/system.hh"
#include "workloads/synthetic.hh"

using namespace asap;

namespace
{

/**
 * Reference translator: the architectural walk, implemented only in
 * terms of frame numbers and the hash-keyed node interface. Must agree
 * with PageTable::lookup() (which chases slab indices) bit-for-bit.
 */
std::optional<Translation>
naiveTranslate(const PageTable &pt, VirtAddr va)
{
    Pfn nodePfn = pt.rootPfn();
    for (unsigned level = pt.levels(); level >= 1; --level) {
        const Pte entry = pt.readEntry(nodePfn, va, level);
        if (!entry.present())
            return std::nullopt;
        if (entry.isLeaf(level)) {
            Translation t;
            t.pfn = entry.pfn();
            t.leafLevel = level;
            t.pteAddr = PageTable::entryPhysAddr(nodePfn, va, level);
            return t;
        }
        nodePfn = entry.pfn();
    }
    return std::nullopt;
}

/** A randomized but always-valid workload spec (small and fast). */
WorkloadSpec
randomSpec(Rng &rng)
{
    WorkloadSpec spec;
    spec.name = "diff";
    spec.paperGb = 1.0;
    spec.residentPages = rng.between(256, 2'048);
    spec.dataVmas = static_cast<unsigned>(rng.between(1, 3));
    spec.smallVmas = static_cast<unsigned>(rng.between(0, 6));
    spec.cyclesPerAccess = static_cast<unsigned>(rng.between(1, 8));
    if (rng.chance(0.3)) {
        spec.zipfTheta = 0.6 + 0.39 * rng.real();
    } else {
        spec.seqFraction = 0.3 * rng.real();
        spec.nearFraction = 0.2 * rng.real();
        spec.windowFraction =
            (1.0 - spec.seqFraction - spec.nearFraction) * rng.real();
        spec.windowPages = rng.between(32, 512);
    }
    spec.linesPerPage = static_cast<unsigned>(rng.between(0, 4));
    spec.burstContinueProb = 0.9 * rng.real();
    spec.machineMemBytes = 256_MiB;
    spec.guestMemBytes = 128_MiB;
    spec.churnOps = rng.below(8'000);
    spec.churnMaxOrder = static_cast<unsigned>(rng.between(1, 3));
    spec.guestChurnOps = rng.below(8'000);
    return spec;
}

EnvironmentOptions
randomOptions(Rng &rng)
{
    EnvironmentOptions options;
    options.virtualized = rng.chance(0.25);
    options.asapPlacement = rng.chance(0.5);
    if (options.virtualized)
        options.hostHugePages = rng.chance(0.25);
    if (rng.chance(0.1))
        options.ptLevels = numPtLevels5;
    if (options.asapPlacement && rng.chance(0.15))
        options.holeFraction = 0.3;
    if (rng.chance(0.1))
        options.pinnedProb = 0.2;
    options.seed = rng.next();
    return options;
}

/** Random machine with valid (power-of-two set count) geometries. */
MachineConfig
randomMachine(Rng &rng, bool virtualized)
{
    MachineConfig machine;

    struct TlbGeom { unsigned entries, ways; };
    const TlbGeom l1Choices[] = {{64, 8}, {32, 8}, {16, 4}, {128, 8}};
    const TlbGeom l2Choices[] = {{1536, 6}, {512, 8}, {384, 6}, {256, 4}};
    const TlbGeom l1 = l1Choices[rng.below(4)];
    const TlbGeom l2 = l2Choices[rng.below(4)];
    machine.tlb.l1.entries = l1.entries;
    machine.tlb.l1.ways = l1.ways;
    machine.tlb.l2.entries = l2.entries;
    machine.tlb.l2.ways = l2.ways;
    // The clustered L2 needs the guest PT at fill time, which the
    // nested (virtualized) path does not carry.
    machine.tlb.clusteredL2 = !virtualized && rng.chance(0.3);

    const unsigned llcSets[] = {1'024, 2'048, 4'096};
    const unsigned llcWays[] = {8, 16, 20};
    const unsigned sets = llcSets[rng.below(3)];
    const unsigned ways = llcWays[rng.below(3)];
    machine.mem.llc.sizeBytes =
        static_cast<std::uint64_t>(sets) * ways * lineSize;
    machine.mem.llc.ways = ways;
    machine.mem.l1d.sizeBytes = rng.chance(0.5) ? 16_KiB : 32_KiB;
    machine.mem.l2.sizeBytes = rng.chance(0.5) ? 128_KiB : 256_KiB;

    machine.pwcScale = rng.chance(0.25) ? 2 : 1;
    if (rng.chance(0.5)) {
        machine.appAsap =
            rng.chance(0.5) ? AsapConfig::p1p2() : AsapConfig::p1();
        if (virtualized && rng.chance(0.5))
            machine.hostAsap = AsapConfig::p2();
    }
    return machine;
}

} // namespace

TEST(Differential, RandomConfigsAgreeAcrossTranslationPaths)
{
    constexpr unsigned iterations = 200;
    constexpr unsigned addressesPerIteration = 400;

    for (unsigned iter = 0; iter < iterations; ++iter) {
        Rng rng(mix64(0xd1ffe12ull + iter));
        SCOPED_TRACE(testing::Message() << "iteration " << iter);

        const WorkloadSpec spec = randomSpec(rng);
        const EnvironmentOptions options = randomOptions(rng);
        System system(makeSystemConfig(spec, options));
        SyntheticWorkload workload(spec);
        workload.setup(system);

        // Two independently configured machines over the same System:
        // different TLB/cache/PWC/ASAP settings may only change timing,
        // never the translation function.
        Machine machineA(system,
                         randomMachine(rng, options.virtualized));
        Machine machineB(system,
                         randomMachine(rng, options.virtualized));

        const auto vmas = system.appSpace().vmas().all();
        workload.reset(rng);
        Cycles now = 0;
        for (unsigned i = 0; i < addressesPerIteration; ++i) {
            // Mostly the workload's stream; every 8th address is a
            // uniform pick inside a random VMA, reaching the small
            // (never-generated) VMAs and their demand-fault path.
            VirtAddr va;
            if (i % 8 == 7) {
                const Vma *vma = vmas[rng.below(vmas.size())];
                va = vma->start + rng.below(vma->sizeBytes());
            } else {
                va = workload.next(rng);
            }
            now += 37;

            const auto a = machineA.translate(va, now);
            const auto b = machineB.translate(va, now);
            ASSERT_EQ(a.translation.pfn, b.translation.pfn)
                << "machines diverge at va " << std::hex << va;
            ASSERT_EQ(a.translation.leafLevel, b.translation.leafLevel);

            // Functional guest-side lookup (slab-index chase) vs the
            // naive frame-keyed reference.
            const auto functional = system.appSpace().translate(va);
            ASSERT_TRUE(functional.has_value());
            const auto naive = naiveTranslate(
                system.appSpace().pageTable(), va);
            ASSERT_TRUE(naive.has_value());
            ASSERT_EQ(naive->pfn, functional->pfn);
            ASSERT_EQ(naive->leafLevel, functional->leafLevel);
            ASSERT_EQ(naive->pteAddr, functional->pteAddr);

            if (!options.virtualized) {
                ASSERT_EQ(a.translation.pfn, functional->pfn)
                    << "hot path diverges from functional lookup at va "
                    << std::hex << va;
                ASSERT_EQ(a.translation.leafLevel,
                          functional->leafLevel);
            } else {
                // The machine installs the composed gVA -> host-frame
                // translation; recompose it functionally.
                const PhysAddr gpa = functional->physAddrOf(va);
                const PhysAddr hpa = system.hostPhysOf(gpa);
                ASSERT_EQ(a.translation.physAddrOf(va), hpa)
                    << "composed nested translation diverges at va "
                    << std::hex << va;

                // Host dimension: slab lookup vs naive reference.
                const auto hostSlab = system.hostPt().lookup(gpa);
                const auto hostNaive =
                    naiveTranslate(system.hostPt(), gpa);
                ASSERT_TRUE(hostSlab.has_value());
                ASSERT_TRUE(hostNaive.has_value());
                ASSERT_EQ(hostNaive->pfn, hostSlab->pfn);
                ASSERT_EQ(hostNaive->leafLevel, hostSlab->leafLevel);
                ASSERT_EQ(hostNaive->pteAddr, hostSlab->pteAddr);
            }
        }
    }
}

/** The off-hot-path OS metadata walk (setAccessed) and the slab/index
 *  agreement: every PT node reachable by index is the node the
 *  frame-keyed map returns for its pfn. */
TEST(Differential, SlabIndexAndFrameMapAgree)
{
    for (unsigned iter = 0; iter < 20; ++iter) {
        Rng rng(mix64(0x51ab ^ iter));
        const WorkloadSpec spec = randomSpec(rng);
        System system(makeSystemConfig(spec, randomOptions(rng)));
        SyntheticWorkload workload(spec);
        workload.setup(system);

        const PageTable &pt = system.appPt();
        for (const Pfn pfn : pt.nodePfns()) {
            const PtNode *byFrame = pt.node(pfn);
            ASSERT_NE(byFrame, nullptr);
            ASSERT_EQ(byFrame->pfn, pfn);
            const PtNodeIndex index = pt.indexOf(pfn);
            ASSERT_NE(index, invalidPtNodeIndex);
            ASSERT_EQ(&pt.nodeAt(index), byFrame);
        }
    }
}
