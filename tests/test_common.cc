/**
 * @file
 * Unit tests for src/common: address math, RNG/Zipfian, statistics.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/logging.hh"
#include "common/mem_level.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"

using namespace asap;

TEST(Types, LevelShiftMatchesX86)
{
    EXPECT_EQ(levelShift(1), 12u);   // 4KB
    EXPECT_EQ(levelShift(2), 21u);   // 2MB
    EXPECT_EQ(levelShift(3), 30u);   // 1GB
    EXPECT_EQ(levelShift(4), 39u);   // 512GB
    EXPECT_EQ(levelShift(5), 48u);
}

TEST(Types, LevelSpan)
{
    EXPECT_EQ(levelSpan(1), 4096u);
    EXPECT_EQ(levelSpan(2), 2u * 1024 * 1024);
    EXPECT_EQ(levelSpan(3), 1024ull * 1024 * 1024);
}

TEST(Types, NodeSpanIsParentEntrySpan)
{
    for (unsigned level = 1; level <= 4; ++level)
        EXPECT_EQ(nodeSpan(level), levelSpan(level + 1)) << level;
}

TEST(Types, LevelIndexExtractsNineBitFields)
{
    // Construct a VA with distinct indices at each level.
    const VirtAddr va = (VirtAddr{5} << 39) | (VirtAddr{17} << 30) |
                        (VirtAddr{511} << 21) | (VirtAddr{1} << 12) | 0xabc;
    EXPECT_EQ(levelIndex(va, 4), 5u);
    EXPECT_EQ(levelIndex(va, 3), 17u);
    EXPECT_EQ(levelIndex(va, 2), 511u);
    EXPECT_EQ(levelIndex(va, 1), 1u);
}

TEST(Types, AlignHelpers)
{
    EXPECT_EQ(alignDown(0x1fffu, 0x1000), 0x1000u);
    EXPECT_EQ(alignUp(0x1001u, 0x1000), 0x2000u);
    EXPECT_EQ(alignUp(0x1000u, 0x1000), 0x1000u);
    EXPECT_EQ(alignDown(0u, 64), 0u);
}

TEST(Types, Pow2AndLog2)
{
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(4096));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(24));
    EXPECT_EQ(log2Floor(4096), 12u);
    EXPECT_EQ(log2Floor(1), 0u);
}

TEST(Types, ByteLiterals)
{
    EXPECT_EQ(4_KiB, 4096u);
    EXPECT_EQ(2_MiB, 2097152u);
    EXPECT_EQ(1_GiB, 1073741824u);
}

TEST(Types, LineOf)
{
    EXPECT_EQ(lineOf(0x1234567), 0x1234540u);
    EXPECT_EQ(lineOf(0x40), 0x40u);
}

TEST(Types, CeilDiv)
{
    EXPECT_EQ(ceilDiv(10, 3), 4u);
    EXPECT_EQ(ceilDiv(9, 3), 3u);
    EXPECT_EQ(ceilDiv(1, 512), 1u);
}

TEST(Logging, Strprintf)
{
    EXPECT_EQ(strprintf("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(strprintf("%#lx", 0xffUL), "0xff");
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    bool anyDiff = false;
    for (int i = 0; i < 10; ++i)
        anyDiff |= (a.next() != b.next());
    EXPECT_TRUE(anyDiff);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BetweenInclusive)
{
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.between(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 3u);     // all three values appear
}

TEST(Rng, RealInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 10000; ++i) {
        const double r = rng.real();
        EXPECT_GE(r, 0.0);
        EXPECT_LT(r, 1.0);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, Mix64IsDeterministicAndMixing)
{
    EXPECT_EQ(mix64(1), mix64(1));
    EXPECT_NE(mix64(1), mix64(2));
}

TEST(Zipf, RankZeroIsMostPopular)
{
    Rng rng(1);
    ZipfianGenerator zipf(1000, 0.99);
    std::vector<int> counts(1000, 0);
    for (int i = 0; i < 100000; ++i)
        ++counts[zipf.next(rng)];
    EXPECT_GT(counts[0], counts[10]);
    EXPECT_GT(counts[1], counts[100]);
}

TEST(Zipf, StaysInRange)
{
    Rng rng(2);
    ZipfianGenerator zipf(37, 0.8);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(zipf.next(rng), 37u);
}

TEST(Zipf, HigherThetaMoreSkewed)
{
    Rng rng1(3), rng2(3);
    ZipfianGenerator flat(10000, 0.5), skew(10000, 0.99);
    int flatTop = 0, skewTop = 0;
    for (int i = 0; i < 50000; ++i) {
        if (flat.next(rng1) < 10)
            ++flatTop;
        if (skew.next(rng2) < 10)
            ++skewTop;
    }
    EXPECT_GT(skewTop, flatTop);
}

TEST(Zipf, BlockScrambleKeepsNeighboursTogether)
{
    Rng rng(4);
    BlockScrambledZipfian zipf(100000, 0.99, 32);
    // Ranks 0..31 are one block: their scrambled positions must be 32
    // consecutive items. Draw many samples and check that the most
    // popular items cluster in few 32-aligned blocks.
    std::set<std::uint64_t> blocks;
    for (int i = 0; i < 2000; ++i)
        blocks.insert(zipf.next(rng) / 32);
    // 2000 zipf draws over 100k items should hit far fewer than 2000
    // distinct blocks (hot ranks share blocks).
    EXPECT_LT(blocks.size(), 1200u);
}

TEST(Zipf, BlockScrambleStaysInRange)
{
    Rng rng(5);
    BlockScrambledZipfian zipf(1000, 0.9, 32);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(zipf.next(rng), 1000u);
}

TEST(SampleStat, Accumulates)
{
    SampleStat stat;
    stat.sample(10);
    stat.sample(20);
    stat.sample(30);
    EXPECT_EQ(stat.count(), 3u);
    EXPECT_EQ(stat.sum(), 60u);
    EXPECT_EQ(stat.min(), 10u);
    EXPECT_EQ(stat.max(), 30u);
    EXPECT_DOUBLE_EQ(stat.mean(), 20.0);
}

TEST(SampleStat, EmptyIsZero)
{
    SampleStat stat;
    EXPECT_EQ(stat.count(), 0u);
    EXPECT_EQ(stat.min(), 0u);
    EXPECT_DOUBLE_EQ(stat.mean(), 0.0);
}

TEST(SampleStat, Reset)
{
    SampleStat stat;
    stat.sample(5);
    stat.reset();
    EXPECT_EQ(stat.count(), 0u);
    EXPECT_EQ(stat.sum(), 0u);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram hist(10, 5);
    hist.sample(0);
    hist.sample(9);
    hist.sample(10);
    hist.sample(49);
    hist.sample(1000);   // overflow bucket
    EXPECT_EQ(hist.count(), 5u);
    EXPECT_EQ(hist.bucketCount(0), 2u);
    EXPECT_EQ(hist.bucketCount(1), 1u);
    EXPECT_EQ(hist.bucketCount(4), 1u);
    EXPECT_EQ(hist.bucketCount(5), 1u);
}

TEST(Histogram, Quantile)
{
    Histogram hist(10, 10);
    for (int i = 0; i < 100; ++i)
        hist.sample(static_cast<std::uint64_t>(i));
    EXPECT_LE(hist.quantile(0.5), 60u);
    EXPECT_GE(hist.quantile(0.5), 40u);
    EXPECT_GE(hist.quantile(0.99), 90u);
}

TEST(LevelDistribution, FractionsSumToOne)
{
    LevelDistribution dist;
    dist.record(MemLevel::L1D);
    dist.record(MemLevel::L1D);
    dist.record(MemLevel::Dram);
    EXPECT_EQ(dist.total(), 3u);
    EXPECT_DOUBLE_EQ(dist.fraction(MemLevel::L1D), 2.0 / 3.0);
    double sum = 0;
    for (std::size_t i = 0; i < numMemLevels; ++i)
        sum += dist.fraction(static_cast<MemLevel>(i));
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(LevelDistribution, Names)
{
    EXPECT_STREQ(memLevelName(MemLevel::Pwc), "PWC");
    EXPECT_STREQ(memLevelName(MemLevel::L1D), "L1");
    EXPECT_STREQ(memLevelName(MemLevel::Dram), "Mem");
}

/** Parameterized: vpnOf/levelIndex round-trip over page numbers. */
class VpnRoundTrip : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(VpnRoundTrip, PageNumberConsistency)
{
    const Vpn vpn = GetParam();
    const VirtAddr va = (vpn << pageShift) | 0x123;
    EXPECT_EQ(vpnOf(va), vpn);
    // The concatenated per-level indices reconstruct the VPN.
    const Vpn rebuilt =
        (static_cast<Vpn>(levelIndex(va, 4)) << 27) |
        (static_cast<Vpn>(levelIndex(va, 3)) << 18) |
        (static_cast<Vpn>(levelIndex(va, 2)) << 9) |
        levelIndex(va, 1);
    EXPECT_EQ(rebuilt, vpn & ((Vpn{1} << 36) - 1));
}

INSTANTIATE_TEST_SUITE_P(Sweep, VpnRoundTrip,
                         ::testing::Values(0, 1, 511, 512, 0x12345,
                                           0xfffffffful, 0x7ffffffffull));

/** Parameterized: Zipf distribution is monotonically decreasing in rank
 *  (statistically) for several thetas. */
class ZipfMonotone : public ::testing::TestWithParam<double>
{};

TEST_P(ZipfMonotone, HeadOutweighsTail)
{
    Rng rng(42);
    ZipfianGenerator zipf(10000, GetParam());
    std::uint64_t head = 0, tail = 0;
    for (int i = 0; i < 50000; ++i) {
        const auto r = zipf.next(rng);
        if (r < 100)
            ++head;
        else if (r >= 9900)
            ++tail;
    }
    EXPECT_GT(head, tail * 2);
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfMonotone,
                         ::testing::Values(0.5, 0.7, 0.85, 0.99));
