/**
 * @file
 * obs::Timeline: epoch boundary arithmetic, the delta-sum == lifetime
 * identity, histogram diffing, golden bit-identity with a timeline
 * attached and enabled, artifact invariance across ASAP_JOBS /
 * ASAP_TIMELINE / parallel replay, Perfetto counter-track parse-back,
 * and the recoverable "timeline-write" fault path.
 *
 * The contract under test: a Timeline observes a run without
 * perturbing it (the epoch-chunked measure phase replays the identical
 * access stream), its per-epoch counter deltas sum exactly to the
 * lifetime counter snapshot, and a failed timeline artifact write is a
 * recoverable Status — never a dead run or a failed sweep cell.
 */

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_inject.hh"
#include "exp/json.hh"
#include "exp/sweep.hh"
#include "obs/histogram.hh"
#include "obs/timeline.hh"
#include "obs/trace_sink.hh"
#include "sim/environment.hh"
#include "sim/parallel_replay.hh"
#include "workloads/trace.hh"

#include "golden_scenarios.hh"

namespace asap
{
namespace
{

using exp::CellResult;
using exp::ResultSet;
using exp::SweepRunner;
using exp::SweepSpec;

/** runScenario with a timeline attached (and the run config's measure
 *  total optionally overridden for boundary-math cases). */
RunStats
runScenarioWithTimeline(const golden::Scenario &scenario,
                        obs::Timeline &timeline,
                        std::uint64_t measureAccesses = 0)
{
    const WorkloadSpec spec = golden::goldenSpec();
    System system(makeSystemConfig(spec, scenario.env));
    const std::unique_ptr<Workload> workload = makeWorkload(spec);
    workload->setup(system);
    Machine machine(system, scenario.machine);
    Simulator simulator(system, machine, *workload);
    simulator.attachTimeline(&timeline);
    RunConfig run = golden::goldenRunConfig(scenario.colocation);
    if (measureAccesses != 0)
        run.measureAccesses = measureAccesses;
    return simulator.run(run);
}

/** golden::Expect is all uint64_t (no padding surprises): bitwise
 *  equality is the whole point of the golden suite. */
void
expectGoldenEq(const golden::Expect &a, const golden::Expect &b,
               const std::string &what)
{
    EXPECT_EQ(std::memcmp(&a, &b, sizeof(golden::Expect)), 0) << what;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/** Scoped env var (NAME=value, unset on destruction). */
class EnvGuard
{
  public:
    EnvGuard(const char *name, const char *value) : name_(name)
    {
        setenv(name, value, 1);
    }
    ~EnvGuard() { unsetenv(name_); }

  private:
    const char *name_;
};

class FaultGuard
{
  public:
    explicit FaultGuard(const char *spec) { fault::reconfigure(spec); }
    ~FaultGuard() { fault::reconfigure(nullptr); }
};

// ---------------------------------------------------------------------------
// Epoch boundary arithmetic
// ---------------------------------------------------------------------------

/** Epoch length that does not divide the measure total: the last epoch
 *  is partial, boundaries are contiguous, cycles are monotonic. */
TEST(Timeline, EpochBoundariesWithPartialFinalEpoch)
{
    const golden::Scenario scenario = golden::goldenScenarios()[1];
    ASSERT_EQ(scenario.name, "native_asap");
    constexpr std::uint64_t measure = 16'000;
    constexpr std::uint64_t epochLen = 4'500;   // 16000 = 3*4500 + 2500

    obs::Timeline timeline(epochLen);
    timeline.setEnabled(true);
    runScenarioWithTimeline(scenario, timeline, measure);

    ASSERT_EQ(timeline.epochCount(), 4u);
    std::uint64_t expectStart = 0;
    for (std::size_t i = 0; i < timeline.epochCount(); ++i) {
        const obs::TimelineEpoch &epoch = timeline.epoch(i);
        EXPECT_EQ(epoch.index, i);
        EXPECT_EQ(epoch.startAccess, expectStart);
        const std::uint64_t expectEnd =
            i + 1 < timeline.epochCount() ? expectStart + epochLen
                                          : measure;
        EXPECT_EQ(epoch.endAccess, expectEnd);
        EXPECT_LE(epoch.startCycle, epoch.endCycle);
        if (i > 0)
            EXPECT_EQ(epoch.startCycle,
                      timeline.epoch(i - 1).endCycle);
        expectStart = expectEnd;
    }
    // The partial final epoch covers exactly the 2500-access remainder.
    EXPECT_EQ(timeline.epoch(3).endAccess - timeline.epoch(3).startAccess,
              2'500u);
}

/** Epoch length dividing the measure total exactly: no extra
 *  zero-length epoch is appended (the final boundary IS the end-of-run
 *  sample). */
TEST(Timeline, ExactDivisionProducesNoEmptyEpoch)
{
    const golden::Scenario scenario = golden::goldenScenarios()[0];
    obs::Timeline timeline(4'000);
    timeline.setEnabled(true);
    runScenarioWithTimeline(scenario, timeline, 16'000);

    ASSERT_EQ(timeline.epochCount(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(timeline.epoch(i).endAccess -
                      timeline.epoch(i).startAccess,
                  4'000u);
    }
    EXPECT_EQ(timeline.epoch(3).endAccess, 16'000u);
}

// ---------------------------------------------------------------------------
// Delta-sum identity
// ---------------------------------------------------------------------------

/** Per-epoch counter deltas (wrapping u64) must sum to the lifetime
 *  counter snapshot bit-exactly, for every scenario — including the
 *  non-monotonic counters (buddy.freeFrames) and constants. */
TEST(Timeline, DeltaSumEqualsLifetimeCounters)
{
    for (const golden::Scenario &scenario : golden::goldenScenarios()) {
        SCOPED_TRACE(scenario.name);
        obs::Timeline timeline(3'000);
        timeline.setEnabled(true);
        const RunStats stats =
            runScenarioWithTimeline(scenario, timeline);

        ASSERT_GT(timeline.epochCount(), 1u);
        const std::vector<std::string> &names = timeline.counterNames();
        ASSERT_EQ(names.size(), stats.counters.size());
        for (std::size_t c = 0; c < names.size(); ++c) {
            ASSERT_EQ(names[c], stats.counters[c].first);
            std::uint64_t sum = 0;
            for (std::size_t e = 0; e < timeline.epochCount(); ++e)
                sum += timeline.epoch(e).counterDeltas[c];
            EXPECT_EQ(sum, stats.counters[c].second) << names[c];
            EXPECT_EQ(timeline.lastCounters()[c],
                      stats.counters[c].second)
                << names[c];
        }
    }
}

// ---------------------------------------------------------------------------
// Histogram diffing
// ---------------------------------------------------------------------------

/** cur - prev over cumulative snapshots of one stream is exactly the
 *  interval's own distribution. */
TEST(Timeline, HistogramDiffRecoversInterval)
{
    obs::Histogram prev;
    for (std::uint64_t v : {4u, 4u, 9u, 130u, 2'000u})
        prev.sample(v);

    obs::Histogram cur = prev;
    obs::Histogram interval;
    for (std::uint64_t v : {7u, 7u, 7u, 55u, 90'000u, 90'001u}) {
        cur.sample(v);
        interval.sample(v);
    }

    const obs::Histogram diff = obs::histogramDiff(cur, prev);
    EXPECT_EQ(diff.count(), interval.count());
    EXPECT_EQ(diff.sum(), interval.sum());
    for (std::size_t i = 0; i < obs::Histogram::numBuckets; ++i)
        EXPECT_EQ(diff.bucketCount(i), interval.bucketCount(i));
    EXPECT_EQ(diff.p50(), interval.p50());
    EXPECT_EQ(diff.p99(), interval.p99());

    // Diff against an empty baseline is the identity.
    const obs::Histogram same = obs::histogramDiff(cur, obs::Histogram());
    EXPECT_EQ(same.count(), cur.count());
    EXPECT_EQ(same.p90(), cur.p90());
}

// ---------------------------------------------------------------------------
// Golden bit-identity
// ---------------------------------------------------------------------------

/** A run with a timeline attached and enabled must be bit-identical to
 *  the plain run, across all six pinned scenarios — observation never
 *  perturbs the model. */
TEST(GoldenEquivalence, TimelineAttachedAndEnabled)
{
    for (const golden::Scenario &scenario : golden::goldenScenarios()) {
        SCOPED_TRACE(scenario.name);
        const RunStats baseline = golden::runScenario(scenario);

        obs::Timeline timeline(2'048);   // does not divide 16000
        timeline.setEnabled(true);
        const RunStats timed =
            runScenarioWithTimeline(scenario, timeline);

        expectGoldenEq(golden::flatten(baseline),
                       golden::flatten(timed), scenario.name);
        // The registered counter snapshot too, name for name.
        ASSERT_EQ(timed.counters.size(), baseline.counters.size());
        for (std::size_t i = 0; i < timed.counters.size(); ++i) {
            EXPECT_EQ(timed.counters[i].first,
                      baseline.counters[i].first);
            EXPECT_EQ(timed.counters[i].second,
                      baseline.counters[i].second)
                << baseline.counters[i].first;
        }
        EXPECT_GT(timeline.epochCount(), 0u);
    }
}

/** The epoch-chunked measure phase must also be invisible to parallel
 *  replay equivalence: serial-with-timeline == serial == one-shard
 *  parallel replay of the recorded stream. */
TEST(GoldenEquivalence, ParallelReplayMatchesTimelineRun)
{
    const std::string path = "timeline_replay_golden.trc";
    const RunConfig run = golden::goldenRunConfig(false);
    recordTrace(golden::goldenSpec(), path, run.seed,
                run.warmupAccesses + run.measureAccesses);
    const WorkloadSpec spec = traceSpec(path);
    const golden::Scenario scenario = golden::goldenScenarios()[1];
    ASSERT_EQ(scenario.name, "native_asap");

    Environment plain(spec, scenario.env);
    const RunStats serial = plain.run(scenario.machine, run);

    Environment timed(spec, scenario.env);
    obs::Timeline timeline(3'777);
    timeline.setEnabled(true);
    const RunStats withTimeline =
        timed.run(scenario.machine, run, nullptr, &timeline);

    expectGoldenEq(golden::flatten(serial),
                   golden::flatten(withTimeline), "serial vs timeline");
    EXPECT_GT(timeline.epochCount(), 1u);

    ParallelReplayOptions options;
    options.shards = 1;
    options.threads = 2;
    StatusOr<RunStats> merged = runParallelReplay(
        spec, scenario.env, scenario.machine, run, options);
    ASSERT_TRUE(merged.ok()) << merged.status().toString();
    expectGoldenEq(golden::flatten(*merged),
                   golden::flatten(withTimeline),
                   "parallel replay vs timeline");
}

// ---------------------------------------------------------------------------
// Sweep artifact invariance (ASAP_TIMELINE / ASAP_JOBS)
// ---------------------------------------------------------------------------

SweepSpec
tinySweep(const char *name)
{
    SweepSpec sweep(name);
    const RunConfig run = golden::goldenRunConfig(false);
    for (const char *column : {"Baseline", "P1+P2"}) {
        EnvironmentOptions env;
        env.asapPlacement = std::strcmp(column, "Baseline") != 0;
        sweep.add(golden::goldenSpec(), env,
                  env.asapPlacement
                      ? makeMachineConfig(AsapConfig::p1p2())
                      : makeMachineConfig(),
                  run, "golden", column);
    }
    return sweep;
}

/** Per-cell timelines are extra artifacts: the deterministic cells
 *  CSV/JSON must be byte-identical with the gate off, on, and across
 *  worker-thread counts — and the timeline files themselves must be
 *  byte-identical across ASAP_JOBS. */
TEST(Timeline, SweepArtifactsInvariantAcrossJobsAndGate)
{
    namespace fs = std::filesystem;
    const std::string dir = "timeline_test_results";
    fs::remove_all(dir);
    EnvGuard resultsDir("ASAP_RESULTS_DIR", dir.c_str());

    const std::string off = [&] {
        const ResultSet results =
            SweepRunner(1).run(tinySweep("timeline_sweep"));
        return results.toCsv() + results.toJson().dump(2);
    }();

    std::string on1, artifacts1;
    const std::vector<std::string> artifactNames = {
        dir + "/timeline_sweep_timeline_golden_Baseline.jsonl",
        dir + "/timeline_sweep_timeline_golden_P1-P2.jsonl"};
    {
        EnvGuard gate("ASAP_TIMELINE", "2000");
        const ResultSet results =
            SweepRunner(1).run(tinySweep("timeline_sweep"));
        on1 = results.toCsv() + results.toJson().dump(2);
        for (const std::string &artifact : artifactNames) {
            ASSERT_TRUE(fs::exists(artifact)) << artifact;
            artifacts1 += readFile(artifact);
        }
    }
    std::string on4, artifacts4;
    {
        EnvGuard gate("ASAP_TIMELINE", "2000");
        const ResultSet results =
            SweepRunner(4).run(tinySweep("timeline_sweep"));
        on4 = results.toCsv() + results.toJson().dump(2);
        for (const std::string &artifact : artifactNames)
            artifacts4 += readFile(artifact);
    }

    EXPECT_EQ(off, on1);
    EXPECT_EQ(on1, on4);
    EXPECT_FALSE(artifacts1.empty());
    EXPECT_EQ(artifacts1, artifacts4);
    fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Perfetto counter tracks
// ---------------------------------------------------------------------------

/** The merged Chrome trace must stay valid JSON, with ph:"C" counter
 *  events carrying numeric args.value on the span timebase. */
TEST(Timeline, ChromeCounterTracksParseBack)
{
    const golden::Scenario scenario = golden::goldenScenarios()[1];
    const WorkloadSpec spec = golden::goldenSpec();
    System system(makeSystemConfig(spec, scenario.env));
    const std::unique_ptr<Workload> workload = makeWorkload(spec);
    workload->setup(system);
    Machine machine(system, scenario.machine);
    obs::TraceSink sink(1u << 16);
    sink.setEnabled(true);
    machine.attachTraceSink(&sink);
    Simulator simulator(system, machine, *workload);
    obs::Timeline timeline(4'000);
    timeline.setEnabled(true);
    simulator.attachTimeline(&timeline);
    simulator.run(golden::goldenRunConfig(scenario.colocation));

    const auto doc =
        exp::Json::parse(sink.chromeJson(timeline.chromeCounterEvents()));
    ASSERT_TRUE(doc.has_value());
    const exp::Json *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);

    std::size_t counterEvents = 0;
    bool sawWalkP99 = false, sawGauge = false, sawDelta = false;
    for (const exp::Json &event : events->items()) {
        const exp::Json *ph = event.find("ph");
        if (!ph || ph->asString() != "C")
            continue;
        ++counterEvents;
        const exp::Json *name = event.find("name");
        ASSERT_NE(name, nullptr);
        sawWalkP99 = sawWalkP99 ||
                     name->asString() == "interval:walkP99";
        sawGauge = sawGauge ||
                   name->asString().rfind("g:", 0) == 0;
        sawDelta = sawDelta ||
                   name->asString().rfind("d:", 0) == 0;
        const exp::Json *args = event.find("args");
        ASSERT_NE(args, nullptr);
        const exp::Json *value = args->find("value");
        ASSERT_NE(value, nullptr);
        EXPECT_EQ(value->type(), exp::Json::Type::Number);
    }
    EXPECT_GT(counterEvents, 0u);
    EXPECT_TRUE(sawWalkP99);
    EXPECT_TRUE(sawGauge);
    EXPECT_TRUE(sawDelta);

    // Without extras the document still parses and has no counter rows.
    const auto bare = exp::Json::parse(sink.chromeJson());
    ASSERT_TRUE(bare.has_value());
    for (const exp::Json &event : bare->find("traceEvents")->items()) {
        const exp::Json *ph = event.find("ph");
        EXPECT_TRUE(!ph || ph->asString() != "C");
    }
}

// ---------------------------------------------------------------------------
// Recoverable write faults and artifact shape
// ---------------------------------------------------------------------------

/** An injected timeline-write failure surfaces as a transient Status;
 *  the in-memory epochs (and the run's stats) survive, and the next
 *  attempt succeeds and parses back line by line. */
TEST(Timeline, WriteFaultIsRecoverable)
{
    const golden::Scenario scenario = golden::goldenScenarios()[0];
    obs::Timeline timeline(4'000);
    timeline.setEnabled(true);
    const RunStats stats = runScenarioWithTimeline(scenario, timeline);
    const std::size_t epochs = timeline.epochCount();
    ASSERT_GT(epochs, 0u);

    const std::string path = "timeline_fault_test.jsonl";
    {
        FaultGuard fault("timeline-write:1");
        const Status status = timeline.writeJsonl(path);
        ASSERT_FALSE(status.ok());
        EXPECT_EQ(status.code(), StatusCode::Unavailable);
        EXPECT_TRUE(status.transient());
    }
    // Nothing was lost: epochs intact, the run's stats untouched, and
    // a retry succeeds.
    EXPECT_EQ(timeline.epochCount(), epochs);
    EXPECT_GT(stats.accesses, 0u);
    ASSERT_TRUE(timeline.writeJsonl(path).ok());

    std::ifstream in(path);
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line)) {
        const auto parsed = exp::Json::parse(line);
        ASSERT_TRUE(parsed.has_value()) << line;
        if (lines == 0) {
            const exp::Json *counters = parsed->find("counters");
            ASSERT_NE(counters, nullptr);
            EXPECT_EQ(counters->items().size(),
                      timeline.counterNames().size());
        }
        ++lines;
    }
    EXPECT_EQ(lines, 1 + epochs);   // header + one line per epoch
    std::filesystem::remove(path);
}

/** A timeline-write fault inside a sweep must not fail the cell: the
 *  artifact write is best-effort, the measured stats are kept. */
TEST(Timeline, SweepCellSurvivesTimelineWriteFault)
{
    namespace fs = std::filesystem;
    const std::string dir = "timeline_fault_results";
    fs::remove_all(dir);
    EnvGuard resultsDir("ASAP_RESULTS_DIR", dir.c_str());
    EnvGuard gate("ASAP_TIMELINE", "2000");
    FaultGuard fault("timeline-write:1");

    const ResultSet results =
        SweepRunner(1).run(tinySweep("timeline_fault_sweep"));
    for (const CellResult &cell : results.cells()) {
        EXPECT_TRUE(cell.status.ok()) << cell.column;
        EXPECT_TRUE(cell.measured) << cell.column;
        EXPECT_GT(cell.stats.accesses, 0u) << cell.column;
        EXPECT_EQ(cell.attempts, 1u) << cell.column;
    }
    fs::remove_all(dir);
}

} // namespace
} // namespace asap
