/**
 * @file
 * Unit tests for src/pt: PTE encoding and the radix page table.
 */

#include <gtest/gtest.h>

#include "os/buddy_allocator.hh"
#include "os/pt_allocators.hh"
#include "pt/page_table.hh"
#include "pt/pte.hh"

using namespace asap;

TEST(Pte, EncodeDecode)
{
    const Pte pte = Pte::make(0x12345, false);
    EXPECT_TRUE(pte.present());
    EXPECT_TRUE(pte.writable());
    EXPECT_TRUE(pte.user());
    EXPECT_FALSE(pte.huge());
    EXPECT_EQ(pte.pfn(), 0x12345u);
}

TEST(Pte, ArchitecturalBitPositions)
{
    const Pte pte = Pte::make(1, true, false);
    EXPECT_EQ(pte.raw() & 1, 1u);                  // P at bit 0
    EXPECT_EQ(pte.raw() & (1u << 7), 1u << 7);     // PS at bit 7
    EXPECT_EQ(pte.raw() & (1u << 1), 0u);          // not writable
    EXPECT_EQ((pte.raw() >> 12) & 0xfffff, 1u);    // pfn at bit 12
}

TEST(Pte, LeafSemantics)
{
    const Pte small = Pte::make(5, false);
    const Pte huge = Pte::make(512, true);
    EXPECT_TRUE(small.isLeaf(1));
    EXPECT_FALSE(small.isLeaf(2));
    EXPECT_TRUE(huge.isLeaf(2));
    EXPECT_TRUE(huge.isLeaf(3));
}

TEST(Pte, AccessedDirty)
{
    Pte pte = Pte::make(7);
    EXPECT_FALSE(pte.accessed());
    pte.setAccessed();
    EXPECT_TRUE(pte.accessed());
    EXPECT_FALSE(pte.dirty());
    pte.setDirty();
    EXPECT_TRUE(pte.dirty());
    EXPECT_EQ(pte.pfn(), 7u);   // flags don't clobber the frame
}

TEST(Pte, ClearInvalidates)
{
    Pte pte = Pte::make(9);
    pte.clear();
    EXPECT_FALSE(pte.present());
}

namespace
{

struct PtFixture : public ::testing::Test
{
    PtFixture() : buddy(1 << 16), allocator(buddy), pt(allocator) {}

    BuddyAllocator buddy;
    BuddyPtAllocator allocator;
    PageTable pt;
};

} // namespace

TEST_F(PtFixture, RootExistsFromBirth)
{
    EXPECT_NE(pt.rootPfn(), invalidPfn);
    EXPECT_EQ(pt.nodeCount(), 1u);
    EXPECT_EQ(pt.levels(), 4u);
}

TEST_F(PtFixture, MapLookupRoundTrip)
{
    pt.map(0x7f0000001000, 0xabc);
    const auto t = pt.lookup(0x7f0000001000);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->pfn, 0xabcu);
    EXPECT_EQ(t->leafLevel, 1u);
    EXPECT_EQ(t->physAddrOf(0x7f0000001234), (0xabcull << 12) | 0x234);
}

TEST_F(PtFixture, UnmappedLookupFails)
{
    EXPECT_FALSE(pt.lookup(0x1000).has_value());
    pt.map(0x1000, 1);
    EXPECT_FALSE(pt.lookup(0x2000).has_value());
}

TEST_F(PtFixture, IntermediateNodesCreatedOnDemand)
{
    pt.map(0x1000, 1);
    // Root + PL3 + PL2 + PL1 nodes.
    EXPECT_EQ(pt.nodeCount(), 4u);
    // A second page in the same 2MB region reuses all intermediates.
    pt.map(0x2000, 2);
    EXPECT_EQ(pt.nodeCount(), 4u);
    // A page 2MB away needs a fresh PL1 node only.
    pt.map(0x1000 + (2ull << 20), 3);
    EXPECT_EQ(pt.nodeCount(), 5u);
}

TEST_F(PtFixture, NodeCountsPerLevel)
{
    pt.map(0x1000, 1);
    EXPECT_EQ(pt.nodeCountAtLevel(4), 1u);
    EXPECT_EQ(pt.nodeCountAtLevel(3), 1u);
    EXPECT_EQ(pt.nodeCountAtLevel(2), 1u);
    EXPECT_EQ(pt.nodeCountAtLevel(1), 1u);
}

TEST_F(PtFixture, UnmapClearsLeafKeepsNodes)
{
    pt.map(0x1000, 1);
    pt.unmap(0x1000);
    EXPECT_FALSE(pt.lookup(0x1000).has_value());
    EXPECT_EQ(pt.nodeCount(), 4u);   // intermediates retained
    pt.map(0x1000, 2);               // remap reuses them
    EXPECT_EQ(pt.nodeCount(), 4u);
}

TEST_F(PtFixture, RemapOverwrites)
{
    pt.map(0x1000, 1);
    pt.map(0x1000, 99);
    EXPECT_EQ(pt.lookup(0x1000)->pfn, 99u);
}

TEST_F(PtFixture, HugePage2MbLeafAtPl2)
{
    const VirtAddr base = 4ull << 21;   // 2MB aligned
    pt.map(base, 0x4000, /*leafLevel=*/2);
    const auto t = pt.lookup(base + 0x12345);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->leafLevel, 2u);
    // Offset within the 2MB page is preserved.
    EXPECT_EQ(t->physAddrOf(base + 0x12345),
              (0x4000ull << 12) + 0x12345);
    // No PL1 node was created.
    EXPECT_EQ(pt.nodeCountAtLevel(1), 0u);
}

TEST_F(PtFixture, HugePage1GbLeafAtPl3)
{
    const VirtAddr base = 2ull << 30;
    pt.map(base, 0x40000, /*leafLevel=*/3);
    const auto t = pt.lookup(base + 0x123456);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->leafLevel, 3u);
    EXPECT_EQ(pt.nodeCountAtLevel(2), 0u);
}

TEST_F(PtFixture, ReadEntryMatchesWalkPath)
{
    pt.map(0x1000, 0x42);
    Pfn node = pt.rootPfn();
    for (unsigned level = 4; level >= 2; --level) {
        const Pte entry = pt.readEntry(node, 0x1000, level);
        ASSERT_TRUE(entry.present());
        ASSERT_FALSE(entry.isLeaf(level));
        node = entry.pfn();
    }
    const Pte leaf = pt.readEntry(node, 0x1000, 1);
    EXPECT_TRUE(leaf.present());
    EXPECT_EQ(leaf.pfn(), 0x42u);
}

TEST_F(PtFixture, EntryPhysAddr)
{
    const Pfn node = 0x100;
    // VA with PL1 index 3 -> entry at node base + 3*8.
    const VirtAddr va = 3u << 12;
    EXPECT_EQ(PageTable::entryPhysAddr(node, va, 1),
              (0x100ull << 12) + 24);
    // PL2 index for va = 5 << 21.
    EXPECT_EQ(PageTable::entryPhysAddr(node, VirtAddr{5} << 21, 2),
              (0x100ull << 12) + 40);
}

TEST_F(PtFixture, SetAccessedDirty)
{
    pt.map(0x1000, 1);
    pt.setAccessed(0x1000, /*dirty=*/true);
    Pfn node = pt.rootPfn();
    for (unsigned level = 4; level >= 2; --level)
        node = pt.readEntry(node, 0x1000, level).pfn();
    const Pte leaf = pt.readEntry(node, 0x1000, 1);
    EXPECT_TRUE(leaf.accessed());
    EXPECT_TRUE(leaf.dirty());
}

TEST_F(PtFixture, ContiguousRegionCounting)
{
    // Buddy hands out ascending frames on a fresh allocator, so the
    // first mapping's four nodes are contiguous: one region.
    pt.map(0x1000, 1);
    EXPECT_EQ(pt.countContiguousRegions(), 1u);
}

TEST(PageTable5Level, FiveLevelWalkDepth)
{
    BuddyAllocator buddy(1 << 16);
    BuddyPtAllocator allocator(buddy);
    PageTable pt(allocator, 5);
    EXPECT_EQ(pt.levels(), 5u);
    // A 52-bit VA exercises the PL5 index.
    const VirtAddr va = (VirtAddr{3} << 48) | 0x1000;
    pt.map(va, 0x77);
    EXPECT_EQ(pt.lookup(va)->pfn, 0x77u);
    // Root + PL4 + PL3 + PL2 + PL1 nodes = 5.
    EXPECT_EQ(pt.nodeCount(), 5u);
    // Different PL5 index is not visible.
    EXPECT_FALSE(pt.lookup(0x1000).has_value());
}

TEST(PageTableScatter, BuddyPlacementInterleavesNodes)
{
    // Interleave data-frame allocations with PT-node creation, as
    // demand paging does: node frames must end up non-contiguous.
    BuddyAllocator buddy(1 << 18);
    BuddyPtAllocator allocator(buddy);
    PageTable pt(allocator);
    for (unsigned i = 0; i < 64; ++i) {
        const Pfn data = buddy.allocFrame();
        pt.map(0x10000000ull + i * (2ull << 20), data);
    }
    EXPECT_GT(pt.countContiguousRegions(), 10u);
}

/** Parameterized: map/lookup round-trips across the VA space. */
class PtMapSweep : public ::testing::TestWithParam<VirtAddr>
{};

TEST_P(PtMapSweep, RoundTrip)
{
    BuddyAllocator buddy(1 << 16);
    BuddyPtAllocator allocator(buddy);
    PageTable pt(allocator);
    const VirtAddr va = GetParam();
    pt.map(va, 0x5a5a);
    ASSERT_TRUE(pt.lookup(va).has_value());
    EXPECT_EQ(pt.lookup(va)->pfn, 0x5a5au);
    EXPECT_EQ(pt.lookup(va)->pteAddr & 7, 0u);   // 8B aligned entries
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PtMapSweep,
    ::testing::Values(0x0ull, 0x1000ull, 0x1ff000ull, 0x200000ull,
                      0x3fffffff000ull, 0x7f1234567000ull,
                      0xffffffff000ull));
