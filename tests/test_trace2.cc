/**
 * @file
 * ASAPTRC2 container tests: v1 -> v2 conversion identity and replay
 * equivalence (the acceptance bar: bit-identical RunStats across both
 * containers, in more than one environment), direct v2 recording,
 * chunk-seek correctness, sampled-stream mode, and corruption handling
 * of the chunk index / footer / compressed payloads.
 */

#include <cstdio>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "expect_status.hh"
#include "golden_scenarios.hh"
#include "sim/environment.hh"
#include "trace/convert.hh"
#include "workloads/suite.hh"
#include "workloads/trace.hh"

using namespace asap;

namespace
{

/** Small, fast generator spec for the format-level tests. */
WorkloadSpec
smallSpec()
{
    WorkloadSpec spec;
    spec.name = "small";
    spec.paperGb = 2.5;
    spec.residentPages = 6'000;
    spec.dataVmas = 3;
    spec.smallVmas = 5;
    spec.cyclesPerAccess = 4;
    spec.windowFraction = 0.5;
    spec.windowPages = 600;
    spec.nearFraction = 0.1;
    spec.seqFraction = 0.1;
    spec.linesPerPage = 2;
    spec.burstContinueProb = 0.5;
    spec.machineMemBytes = 512_MiB;
    spec.guestMemBytes = 128_MiB;
    spec.churnOps = 5'000;
    spec.churnMaxOrder = 2;
    return spec;
}

/** RAII deleter so test artifacts do not pile up in the build tree. */
class TempTrace
{
  public:
    explicit TempTrace(std::string path) : path_(std::move(path)) {}
    ~TempTrace() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** All stored addresses of @p path, decoded through TraceCursor. */
std::vector<VirtAddr>
decodeAll(const std::string &path)
{
    const TraceFile file(path);
    TraceCursor cursor(file);
    std::vector<VirtAddr> out(file.header().accessCount);
    for (VirtAddr &va : out)
        va = cursor.next();
    return out;
}

/** Run @p spec on a fresh System (live generator or trace replay). */
RunStats
runFresh(const WorkloadSpec &spec, const EnvironmentOptions &options,
         const MachineConfig &machine, const RunConfig &run)
{
    System system(makeSystemConfig(spec, options));
    const auto workload = makeWorkload(spec);
    workload->setup(system);
    Machine m(system, machine);
    Simulator simulator(system, m, *workload);
    return simulator.run(run);
}

void
expectStatsEqual(const golden::Expect &live, const golden::Expect &rep)
{
    EXPECT_EQ(live.tlbL1Hits, rep.tlbL1Hits);
    EXPECT_EQ(live.tlbL2Hits, rep.tlbL2Hits);
    EXPECT_EQ(live.tlbMisses, rep.tlbMisses);
    EXPECT_EQ(live.faults, rep.faults);
    EXPECT_EQ(live.walkCount, rep.walkCount);
    EXPECT_EQ(live.walkSum, rep.walkSum);
    EXPECT_EQ(live.totalCycles, rep.totalCycles);
    EXPECT_EQ(live.walkCycles, rep.walkCycles);
    EXPECT_EQ(live.dataCycles, rep.dataCycles);
    EXPECT_EQ(live.computeCycles, rep.computeCycles);
    EXPECT_EQ(live.levelTotal, rep.levelTotal);
    EXPECT_EQ(live.appIssued, rep.appIssued);
    EXPECT_EQ(live.hostIssued, rep.hostIssued);
}

/** Copy @p src to @p dst with byte @p offset xor'd by @p mask. */
void
corruptCopy(const std::string &src, const std::string &dst,
            std::uint64_t offset, std::uint8_t mask)
{
    std::FILE *in = std::fopen(src.c_str(), "rb");
    ASSERT_NE(in, nullptr);
    std::fseek(in, 0, SEEK_END);
    std::vector<unsigned char> bytes(
        static_cast<std::size_t>(std::ftell(in)));
    std::fseek(in, 0, SEEK_SET);
    ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), in),
              bytes.size());
    std::fclose(in);
    ASSERT_LT(offset, bytes.size());
    bytes[offset] ^= mask;
    std::FILE *out = std::fopen(dst.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), out),
              bytes.size());
    std::fclose(out);
}

} // namespace

/** v1 -> v2 conversion preserves the header, the setup ops and every
 *  address of the stream, compressed or not. */
TEST(Trc2Convert, ConversionIdentity)
{
    const TempTrace v1("trc2_identity.trc1");
    const TempTrace v2("trc2_identity.trc2");
    const TempTrace v2raw("trc2_identity_raw.trc2");
    const TempTrace v2again("trc2_identity_again.trc2");
    recordTrace(smallSpec(), v1.path(), /*seed=*/11, /*accesses=*/5'000);

    Trc2Options options;
    options.chunkAccesses = 512;
    convertToV2(v1.path(), v2.path(), options);
    options.compress = false;
    convertToV2(v1.path(), v2raw.path(), options);
    // v2 -> v2 re-containering with a different chunking.
    options.chunkAccesses = 300;
    options.compress = true;
    convertToV2(v2.path(), v2again.path(), options);

    const std::vector<VirtAddr> reference = decodeAll(v1.path());
    EXPECT_EQ(decodeAll(v2.path()), reference);
    EXPECT_EQ(decodeAll(v2raw.path()), reference);
    EXPECT_EQ(decodeAll(v2again.path()), reference);

    const TraceFile a(v1.path());
    const TraceFile b(v2.path());
    EXPECT_EQ(b.version(), 2u);
    EXPECT_EQ(b.header().name, a.header().name);
    EXPECT_EQ(b.header().accessCount, a.header().accessCount);
    EXPECT_EQ(b.header().representedAccesses,
              a.header().representedAccesses);
    EXPECT_EQ(b.header().recordSeed, a.header().recordSeed);
    EXPECT_EQ(b.header().machineMemBytes, a.header().machineMemBytes);
    ASSERT_EQ(a.opsEnd() - a.opsBegin(), b.opsEnd() - b.opsBegin());
    EXPECT_EQ(0, std::memcmp(a.opsBegin(), b.opsBegin(),
                             static_cast<std::size_t>(a.opsEnd() -
                                                      a.opsBegin())));

    // traceSpec (and hence specByName("trace:...")) sees v2 files.
    const WorkloadSpec spec = traceSpec(v2.path());
    EXPECT_EQ(spec.name, "small");
    EXPECT_EQ(spec.tracePath, v2.path());
}

/** Recording straight to v2 yields the same stream as recording v1. */
TEST(Trc2Convert, DirectV2RecordMatchesV1)
{
    const TempTrace v1("trc2_direct.trc1");
    const TempTrace v2("trc2_direct.trc2");
    recordTrace(smallSpec(), v1.path(), 7, 3'000);
    RecordOptions options;
    options.version = trc2Version;
    options.v2.chunkAccesses = 777;
    recordTrace(smallSpec(), v2.path(), 7, 3'000, options);

    EXPECT_EQ(decodeAll(v2.path()), decodeAll(v1.path()));
    const TraceFile file(v2.path());
    EXPECT_EQ(file.version(), 2u);
    EXPECT_EQ(file.chunks().size(), (3'000 + 776) / 777u);
}

/** Seeking through the chunk index lands exactly where sequential
 *  decoding does, at boundaries, mid-chunk, the last access and after
 *  wrap-around. */
TEST(Trc2Convert, ChunkSeek)
{
    const TempTrace v1("trc2_seek.trc1");
    const TempTrace v2("trc2_seek.trc2");
    constexpr std::uint64_t accesses = 5'000;
    recordTrace(smallSpec(), v1.path(), 13, accesses);
    Trc2Options options;
    options.chunkAccesses = 256;
    convertToV2(v1.path(), v2.path(), options);

    const std::vector<VirtAddr> reference = decodeAll(v1.path());
    const TraceFile file(v2.path());
    ASSERT_EQ(file.chunks().size(), (accesses + 255) / 256);
    TraceCursor cursor(file);
    const std::uint64_t positions[] = {0,    1,    255,  256, 257,
                                       1000, 2559, 2560, accesses - 1,
                                       accesses + 300};
    for (const std::uint64_t pos : positions) {
        cursor.seekTo(pos);
        EXPECT_EQ(cursor.next(), reference[pos % accesses])
            << "seek to " << pos;
        // And the stream continues correctly from there.
        EXPECT_EQ(cursor.next(), reference[(pos + 1) % accesses])
            << "decode after seek to " << pos;
    }

    // v1 cursors seek too (by decoding forward).
    const TraceFile v1File(v1.path());
    TraceCursor v1Cursor(v1File);
    v1Cursor.seekTo(1234);
    EXPECT_EQ(v1Cursor.next(), reference[1234]);
}

/** Sampled-stream mode stores exactly the 1-in-N chunks of the full
 *  chunking and keeps the represented total for scaling. */
TEST(Trc2Convert, SampledStream)
{
    const TempTrace v1("trc2_sampled.trc1");
    const TempTrace v2("trc2_sampled.trc2");
    constexpr std::uint64_t accesses = 4'000;
    constexpr std::uint32_t chunk = 128;
    constexpr std::uint32_t interval = 4;
    recordTrace(smallSpec(), v1.path(), 5, accesses);
    Trc2Options options;
    options.chunkAccesses = chunk;
    options.sampleInterval = interval;
    convertToV2(v1.path(), v2.path(), options);

    const std::vector<VirtAddr> reference = decodeAll(v1.path());
    std::vector<VirtAddr> expected;
    for (std::uint64_t at = 0; at < accesses; at += chunk) {
        if ((at / chunk) % interval != 0)
            continue;
        for (std::uint64_t i = at; i < at + chunk && i < accesses; ++i)
            expected.push_back(reference[i]);
    }
    EXPECT_EQ(decodeAll(v2.path()), expected);

    const TraceFile file(v2.path());
    EXPECT_EQ(file.header().accessCount, expected.size());
    EXPECT_EQ(file.header().representedAccesses, accesses);
    EXPECT_EQ(file.header().sampleInterval, interval);

    TraceReplayWorkload replay(v2.path());
    EXPECT_DOUBLE_EQ(replay.sampleScale(),
                     static_cast<double>(accesses) /
                         static_cast<double>(expected.size()));

    // Re-containering the sampled trace keeps the represented total.
    const TempTrace again("trc2_sampled_again.trc2");
    convertToV2(v2.path(), again.path(), Trc2Options{});
    const TraceFile reFile(again.path());
    EXPECT_EQ(reFile.header().representedAccesses, accesses);
    EXPECT_EQ(reFile.header().accessCount, expected.size());
}

/** Corrupt v2 files must fail as recoverable StatusErrors at load or
 *  decode, never read out of bounds. */
TEST(Trc2Corruption, FooterIndexAndPayload)
{
    const TempTrace v1("trc2_corrupt.trc1");
    const TempTrace v2("trc2_corrupt.trc2");
    recordTrace(smallSpec(), v1.path(), 7, 2'000);
    Trc2Options options;
    options.chunkAccesses = 512;
    convertToV2(v1.path(), v2.path(), options);

    const TraceFile valid(v2.path());
    const std::uint64_t fileBytes = valid.fileBytes();
    ASSERT_GT(valid.chunks().size(), 1u);
    const bool compressed =
        valid.chunks()[0].codec == chunkCodecDeflate;

    // Footer magic.
    const TempTrace badFooter("trc2_corrupt_footer.trc2");
    corruptCopy(v2.path(), badFooter.path(), fileBytes - 1, 0xff);
    testutil::expectStatusError([&] { TraceFile{badFooter.path()}; },
                                StatusCode::DataLoss,
                                "bad trace footer");

    // Index offset pointing nowhere sane.
    const TempTrace badIndex("trc2_corrupt_index.trc2");
    corruptCopy(v2.path(), badIndex.path(), fileBytes - 24, 0xff);
    testutil::expectStatusError([&] { TraceFile{badIndex.path()}; },
                                "chunk index|truncated");

    // A truncated file loses the footer entirely.
    const TempTrace cut("trc2_corrupt_cut.trc2");
    {
        std::FILE *in = std::fopen(v2.path().c_str(), "rb");
        ASSERT_NE(in, nullptr);
        std::vector<char> bytes(static_cast<std::size_t>(fileBytes / 2));
        ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), in),
                  bytes.size());
        std::fclose(in);
        std::FILE *out = std::fopen(cut.path().c_str(), "wb");
        ASSERT_NE(out, nullptr);
        ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), out),
                  bytes.size());
        std::fclose(out);
    }
    testutil::expectStatusError([&] { TraceFile{cut.path()}; },
                                "truncated|footer|index");

    // A flipped byte inside a compressed payload fails the zlib
    // checksum when the chunk is decoded.
    if (compressed) {
        const TempTrace badPayload("trc2_corrupt_payload.trc2");
        corruptCopy(v2.path(), badPayload.path(),
                    valid.chunks()[0].offset + 10, 0x55);
        testutil::expectStatusError(
            [&] { decodeAll(badPayload.path()); }, "decompress");
    }
}

/**
 * The acceptance bar: a trace recorded as ASAPTRC1 and converted to
 * ASAPTRC2 (compressed) replays with bit-identical RunStats for every
 * workload of the standard suite — and in two structurally different
 * golden environments (native baseline and virtualized 2D) for the
 * suite's first workload.
 */
TEST(Trc2Replay, RoundTripAllSuiteWorkloads)
{
    RunConfig run;
    run.warmupAccesses = 2'000;
    run.measureAccesses = 8'000;
    run.seed = 7;

    const MachineConfig machine;
    bool virtChecked = false;
    for (const WorkloadSpec &full : standardSuite()) {
        SCOPED_TRACE(full.name);
        const WorkloadSpec spec = scaledDown(full, 64);
        const TempTrace v1("trc2_roundtrip_" + full.name + ".trc1");
        const TempTrace v2("trc2_roundtrip_" + full.name + ".trc2");
        recordTrace(spec, v1.path(), run.seed,
                    run.warmupAccesses + run.measureAccesses);
        convertToV2(v1.path(), v2.path(), Trc2Options{});
        const WorkloadSpec replay = traceSpec(v2.path());

        const EnvironmentOptions native;
        const RunStats live = runFresh(spec, native, machine, run);
        const RunStats replayed = runFresh(replay, native, machine, run);
        expectStatsEqual(golden::flatten(live),
                         golden::flatten(replayed));

        if (!virtChecked) {
            // Second golden environment: virtualized 2D walks.
            EnvironmentOptions virt;
            virt.virtualized = true;
            const RunStats liveVirt = runFresh(spec, virt, machine, run);
            const RunStats replayedVirt =
                runFresh(replay, virt, machine, run);
            expectStatsEqual(golden::flatten(liveVirt),
                             golden::flatten(replayedVirt));
            virtChecked = true;
        }
    }
}

/** The library-level round-trip checker the CLI --verify runs. */
TEST(Trc2Replay, ReplayStatsMatchHelper)
{
    const TempTrace v1("trc2_verify.trc1");
    const TempTrace v2("trc2_verify.trc2");
    recordTrace(scaledDown(mcfSpec(), 64), v1.path(), 7, 12'000);
    convertToV2(v1.path(), v2.path(), Trc2Options{});

    std::string report;
    EXPECT_TRUE(replayStatsMatch(v1.path(), v2.path(), 2'000, 10'000,
                                 report))
        << report;

    // A different workload's trace must NOT match (sanity that the
    // checker can fail).
    const TempTrace other("trc2_verify_other.trc1");
    recordTrace(scaledDown(cannealSpec(), 64), other.path(), 7, 12'000);
    EXPECT_FALSE(replayStatsMatch(v1.path(), other.path(), 2'000,
                                  10'000, report));
    EXPECT_FALSE(report.empty());
}
