/**
 * @file
 * Unit + property tests for src/os: VMA tree, address space, and the
 * two PT-node placement policies (buddy vs ASAP contiguous/sorted).
 */

#include <gtest/gtest.h>

#include "os/address_space.hh"
#include "os/buddy_allocator.hh"
#include "os/pt_allocators.hh"
#include "os/vma.hh"

using namespace asap;

// ---------------------------------------------------------------------
// VmaTree
// ---------------------------------------------------------------------

TEST(VmaTree, InsertAndFind)
{
    VmaTree tree;
    const auto id = tree.insert(0x10000, 0x20000, "heap", true);
    const Vma *vma = tree.find(0x15000);
    ASSERT_NE(vma, nullptr);
    EXPECT_EQ(vma->id, id);
    EXPECT_EQ(vma->name, "heap");
    EXPECT_TRUE(vma->prefetchable);
    EXPECT_EQ(tree.find(0x20000), nullptr);   // end is exclusive
    EXPECT_EQ(tree.find(0xffff), nullptr);
}

TEST(VmaTree, MultipleRangesSorted)
{
    VmaTree tree;
    tree.insert(0x30000, 0x40000, "b", false);
    tree.insert(0x10000, 0x20000, "a", false);
    const auto all = tree.all();
    ASSERT_EQ(all.size(), 2u);
    EXPECT_EQ(all[0]->name, "a");
    EXPECT_EQ(all[1]->name, "b");
}

TEST(VmaTree, GrowSucceedsIntoGap)
{
    VmaTree tree;
    const auto id = tree.insert(0x10000, 0x20000, "heap", true);
    tree.insert(0x40000, 0x50000, "next", false);
    EXPECT_TRUE(tree.grow(id, 0x10000));
    EXPECT_EQ(tree.byId(id)->end, 0x30000u);
}

TEST(VmaTree, GrowBlockedByNeighbor)
{
    VmaTree tree;
    const auto id = tree.insert(0x10000, 0x20000, "heap", true);
    tree.insert(0x20000, 0x30000, "next", false);
    EXPECT_FALSE(tree.grow(id, 0x1000));
    EXPECT_EQ(tree.byId(id)->end, 0x20000u);
}

TEST(VmaTree, Remove)
{
    VmaTree tree;
    const auto id = tree.insert(0x10000, 0x20000, "x", false);
    tree.remove(id);
    EXPECT_EQ(tree.find(0x15000), nullptr);
    EXPECT_EQ(tree.size(), 0u);
}

TEST(VmaTreeDeath, OverlapPanics)
{
    VmaTree tree;
    tree.insert(0x10000, 0x20000, "a", false);
    EXPECT_DEATH(tree.insert(0x18000, 0x28000, "b", false), "overlap");
    EXPECT_DEATH(tree.insert(0x08000, 0x18000, "c", false), "overlap");
}

// ---------------------------------------------------------------------
// AddressSpace with buddy placement
// ---------------------------------------------------------------------

namespace
{

struct SpaceFixture : public ::testing::Test
{
    SpaceFixture()
        : buddy(1 << 16), ptAllocator(buddy),
          space(buddy, ptAllocator, AddressSpaceConfig{})
    {}

    BuddyAllocator buddy;
    BuddyPtAllocator ptAllocator;
    AddressSpace space;
};

} // namespace

TEST_F(SpaceFixture, MmapCreatesVma)
{
    const auto id = space.mmap(1_MiB, "heap", true);
    const Vma *vma = space.vmas().byId(id);
    ASSERT_NE(vma, nullptr);
    EXPECT_EQ(vma->sizeBytes(), 1_MiB);
    EXPECT_EQ(vma->touchedPages, 0u);   // lazy: nothing mapped yet
    EXPECT_FALSE(space.translate(vma->start).has_value());
}

TEST_F(SpaceFixture, TouchFaultsOnceThenHits)
{
    const auto id = space.mmap(1_MiB, "heap", true);
    const VirtAddr va = space.vmas().byId(id)->start + 0x3123;
    const auto first = space.touch(va);
    EXPECT_TRUE(first.faulted);
    const auto second = space.touch(va);
    EXPECT_FALSE(second.faulted);
    EXPECT_EQ(first.translation.pfn, second.translation.pfn);
    EXPECT_EQ(space.pageFaults(), 1u);
    EXPECT_EQ(space.touchedPages(), 1u);
}

TEST_F(SpaceFixture, TranslationCoversWholePage)
{
    const auto id = space.mmap(64_KiB, "x", false);
    const VirtAddr base = space.vmas().byId(id)->start;
    space.touch(base + 0x1000);
    const auto t = space.translate(base + 0x1fff);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->physAddrOf(base + 0x1fff) & pageOffsetMask, 0xfffu);
}

TEST_F(SpaceFixture, DistinctPagesGetDistinctFrames)
{
    const auto id = space.mmap(64_KiB, "x", false);
    const VirtAddr base = space.vmas().byId(id)->start;
    const auto a = space.touch(base).translation.pfn;
    const auto b = space.touch(base + pageSize).translation.pfn;
    EXPECT_NE(a, b);
}

TEST_F(SpaceFixture, VmasForFootprintCoverage)
{
    const auto big = space.mmap(1_MiB, "big", true);
    const auto small = space.mmap(64_KiB, "small", false);
    const VirtAddr bigBase = space.vmas().byId(big)->start;
    const VirtAddr smallBase = space.vmas().byId(small)->start;
    for (int i = 0; i < 200; ++i)
        space.touch(bigBase + static_cast<VirtAddr>(i) * pageSize);
    space.touch(smallBase);
    EXPECT_EQ(space.vmasForFootprintCoverage(0.99), 1u);
    EXPECT_EQ(space.vmasForFootprintCoverage(1.0), 2u);
}

TEST_F(SpaceFixture, ExtendVmaGrowsRange)
{
    const auto id = space.mmap(64_KiB, "heap", true);
    const VirtAddr oldEnd = space.vmas().byId(id)->end;
    EXPECT_TRUE(space.extendVma(id, 64_KiB));
    EXPECT_EQ(space.vmas().byId(id)->end, oldEnd + 64_KiB);
    // Newly grown pages are touchable.
    EXPECT_TRUE(space.touch(oldEnd).faulted);
}

TEST(AddressSpaceHuge, HugePagesMapWholeRegion)
{
    BuddyAllocator buddy(1 << 16);
    BuddyPtAllocator ptAllocator(buddy);
    AddressSpaceConfig config;
    config.hugePages = true;
    AddressSpace space(buddy, ptAllocator, config);
    const auto id = space.mmap(4_MiB, "heap", true);
    const VirtAddr base = space.vmas().byId(id)->start;
    const auto t = space.touch(base + 0x1234).translation;
    EXPECT_EQ(t.leafLevel, 2u);
    // A second touch within the same 2MB page does not fault.
    EXPECT_FALSE(space.touch(base + 0x100000).faulted);
    EXPECT_EQ(space.pageFaults(), 1u);
    // The backing block is 2MB aligned.
    EXPECT_EQ(t.pfn & (entriesPerNode - 1), 0u);
}

TEST_F(SpaceFixture, RelocateFrameMovesDataPage)
{
    const auto id = space.mmap(64_KiB, "x", false);
    const VirtAddr base = space.vmas().byId(id)->start;
    const Pfn before = space.touch(base).translation.pfn;
    EXPECT_TRUE(space.relocateFrame(before));
    const Pfn after = space.translate(base)->pfn;
    EXPECT_NE(before, after);
    EXPECT_TRUE(buddy.isFree(before));
    EXPECT_EQ(space.relocations(), 1u);
}

TEST_F(SpaceFixture, RelocateRefusesNonDataFrames)
{
    // A PT node frame has no reverse mapping.
    const auto id = space.mmap(64_KiB, "x", false);
    space.touch(space.vmas().byId(id)->start);
    const Pfn root = space.pageTable().rootPfn();
    EXPECT_FALSE(space.relocateFrame(root));
}

TEST(AddressSpacePinned, PinnedPagesAreNotRelocatable)
{
    BuddyAllocator buddy(1 << 16);
    BuddyPtAllocator ptAllocator(buddy);
    AddressSpaceConfig config;
    config.pinnedProb = 1.0;    // pin everything
    AddressSpace space(buddy, ptAllocator, config);
    const auto id = space.mmap(64_KiB, "x", false);
    const Pfn f = space.touch(space.vmas().byId(id)->start).translation.pfn;
    EXPECT_FALSE(space.relocateFrame(f));
}

TEST_F(SpaceFixture, BackRangeContiguousIsContiguousAndPinned)
{
    const auto id = space.mmap(1_MiB, "vm", true);
    const VirtAddr base = space.vmas().byId(id)->start;
    const Pfn first = space.backRangeContiguous(base, 32);
    ASSERT_NE(first, invalidPfn);
    for (unsigned i = 0; i < 32; ++i) {
        const auto t = space.translate(base + i * pageSize);
        ASSERT_TRUE(t.has_value());
        EXPECT_EQ(t->pfn, first + i);
        EXPECT_FALSE(space.relocateFrame(first + i));   // pinned
    }
}

// ---------------------------------------------------------------------
// AsapPtAllocator: contiguity, sortedness, base-plus-offset math
// ---------------------------------------------------------------------

namespace
{

struct AsapFixture : public ::testing::Test
{
    AsapFixture()
        : buddy(1 << 16), asap(buddy, {1, 2}),
          space(buddy, asap, AddressSpaceConfig{})
    {
        space.addObserver(&asap);
    }

    BuddyAllocator buddy;
    AsapPtAllocator asap;
    AddressSpace space;
};

} // namespace

TEST_F(AsapFixture, RegionsReservedAtVmaCreation)
{
    const std::uint64_t before = buddy.freeFrames();
    space.mmap(64_MiB, "heap", true);
    // PL1: 64MB/2MB = 32 node slots; PL2: 1 slot.
    EXPECT_EQ(asap.reservedFrames(), 33u);
    EXPECT_EQ(before - buddy.freeFrames(), 33u);
    EXPECT_EQ(asap.regions().size(), 2u);
}

TEST_F(AsapFixture, NonPrefetchableVmaGetsNoRegion)
{
    space.mmap(64_MiB, "libs", false);
    EXPECT_EQ(asap.reservedFrames(), 0u);
    EXPECT_TRUE(asap.regions().empty());
}

TEST_F(AsapFixture, NodesAreSortedAndContiguous)
{
    const auto id = space.mmap(64_MiB, "heap", true);
    const VirtAddr base = space.vmas().byId(id)->start;
    // Touch pages in *random* order: one per 2MB region.
    const unsigned order[] = {7, 2, 30, 0, 15, 9, 31, 1};
    for (const unsigned i : order)
        space.touch(base + static_cast<VirtAddr>(i) * 2_MiB);

    const AsapPtAllocator::Region *region = asap.regionFor(base, 1);
    ASSERT_NE(region, nullptr);
    // Each touched 2MB slice's PL1 node must sit at basePfn + index,
    // regardless of fault order (the sorted property, Section 3.3).
    const PageTable &pt = space.pageTable();
    for (const unsigned i : order) {
        const VirtAddr va = base + static_cast<VirtAddr>(i) * 2_MiB;
        Pfn node = pt.rootPfn();
        for (unsigned level = 4; level >= 2; --level)
            node = pt.readEntry(node, va, level).pfn();
        EXPECT_EQ(node, region->basePfn + region->slotOf(va)) << i;
    }
}

TEST_F(AsapFixture, EntryAddrMatchesActualPteLocation)
{
    // THE core ASAP invariant: the range-register arithmetic
    // (base + (offset >> s) * 8) must compute exactly the physical
    // address of the PTE the walker reads.
    const auto id = space.mmap(32_MiB, "heap", true);
    const VirtAddr base = space.vmas().byId(id)->start;
    Rng rng(5);
    for (int i = 0; i < 200; ++i) {
        const VirtAddr va = base + rng.below(32_MiB);
        space.touch(va);
        const auto t = space.translate(va);
        ASSERT_TRUE(t.has_value());
        const AsapPtAllocator::Region *r1 = asap.regionFor(va, 1);
        ASSERT_NE(r1, nullptr);
        EXPECT_EQ(r1->entryAddrOf(va), t->pteAddr) << i;
    }
}

TEST_F(AsapFixture, Pl2EntryAddrMatchesWalkPath)
{
    const auto id = space.mmap(64_MiB, "heap", true);
    const VirtAddr base = space.vmas().byId(id)->start;
    space.touch(base + 5 * 2_MiB + 0x1234);
    const PageTable &pt = space.pageTable();
    // Find the PL2 node by walking.
    Pfn node = pt.rootPfn();
    const VirtAddr va = base + 5 * 2_MiB + 0x1234;
    for (unsigned level = 4; level >= 3; --level)
        node = pt.readEntry(node, va, level).pfn();
    const PhysAddr pl2Entry = PageTable::entryPhysAddr(node, va, 2);
    const AsapPtAllocator::Region *r2 = asap.regionFor(va, 2);
    ASSERT_NE(r2, nullptr);
    EXPECT_EQ(r2->entryAddrOf(va), pl2Entry);
}

TEST_F(AsapFixture, SlotShiftsMatchPaperS1S2)
{
    // s1 = 9, s2 = 18 (paper Figure 6), folded with x8 entry size:
    // entry offset = (va - base) >> 12 << 3 = (va - base) >> 9.
    const auto id = space.mmap(8_MiB, "heap", true);
    const VirtAddr base = space.vmas().byId(id)->start;
    const AsapPtAllocator::Region *r1 = asap.regionFor(base, 1);
    const AsapPtAllocator::Region *r2 = asap.regionFor(base, 2);
    ASSERT_NE(r1, nullptr);
    ASSERT_NE(r2, nullptr);
    const VirtAddr va = base + 0x123000;
    EXPECT_EQ(r1->entryAddrOf(va) - (r1->basePfn << pageShift),
              ((va - r1->vaBase) >> 12) * 8);
    EXPECT_EQ(r2->entryAddrOf(va) - (r2->basePfn << pageShift),
              ((va - r2->vaBase) >> 21) * 8);
}

TEST_F(AsapFixture, FallbackToBuddyWithoutRegion)
{
    // Exhaust contiguous space so the reservation fails.
    BuddyAllocator tiny(64, 6);
    AsapPtAllocator tinyAsap(tiny, {1, 2});
    AddressSpace tinySpace(tiny, tinyAsap, AddressSpaceConfig{});
    tinySpace.addObserver(&tinyAsap);
    // 512MB VMA needs 256 PL1 slots; only 64 frames exist.
    tinySpace.mmap(512_MiB, "heap", true);
    EXPECT_GE(tinyAsap.failedReservations(), 1u);
    // Touch still works through buddy fallback.
    const Vma *vma = tinySpace.vmas().all()[0];
    tinySpace.touch(vma->start);
    EXPECT_TRUE(tinySpace.translate(vma->start).has_value());
    EXPECT_GT(tinyAsap.fallbackAllocs(), 0u);
}

TEST_F(AsapFixture, ContiguousRegionCountIsSmall)
{
    const auto id = space.mmap(64_MiB, "heap", true);
    const VirtAddr base = space.vmas().byId(id)->start;
    for (unsigned i = 0; i < 32; ++i)
        space.touch(base + static_cast<VirtAddr>(i) * 2_MiB);
    // PL1 nodes form one run; root/PL3/PL2 nodes add a few more.
    EXPECT_LE(space.pageTable().countContiguousRegions(), 5u);
}

TEST_F(AsapFixture, HoleFractionMakesSlotsUnbacked)
{
    AsapPtAllocator holey(buddy, {1, 2});
    holey.setHoleFraction(0.5, 7);
    AddressSpace holeySpace(buddy, holey, AddressSpaceConfig{});
    holeySpace.addObserver(&holey);
    const auto id = holeySpace.mmap(64_MiB, "heap", true);
    const VirtAddr base = holeySpace.vmas().byId(id)->start;
    unsigned backed = 0;
    for (unsigned i = 0; i < 32; ++i) {
        if (holey.slotBacked(base + static_cast<VirtAddr>(i) * 2_MiB, 1))
            ++backed;
    }
    EXPECT_GT(backed, 4u);
    EXPECT_LT(backed, 28u);
    // Holes still map correctly through the buddy fallback.
    for (unsigned i = 0; i < 32; ++i)
        holeySpace.touch(base + static_cast<VirtAddr>(i) * 2_MiB);
    EXPECT_GT(holey.fallbackAllocs(), 0u);
}

TEST_F(AsapFixture, VmaGrowthExtendsRegionInPlace)
{
    // Fresh memory: the frames after the region are free, so growth
    // extends in place.
    const auto id = space.mmap(8_MiB, "heap", true);
    const VirtAddr base = space.vmas().byId(id)->start;
    const AsapPtAllocator::Region *r1 = asap.regionFor(base, 1);
    const Pfn oldBase = r1->basePfn;
    const std::uint64_t oldBacked = r1->backedSlots;
    ASSERT_TRUE(space.extendVma(id, 8_MiB));
    r1 = asap.regionFor(base, 1);
    EXPECT_EQ(r1->basePfn, oldBase);
    EXPECT_EQ(r1->backedSlots, oldBacked * 2);
    EXPECT_EQ(asap.holesCreatedByGrowth(), 0u);
    // New slices use the extended region, sorted.
    const VirtAddr grown = base + 8_MiB + 2_MiB;
    space.touch(grown);
    const PageTable &pt = space.pageTable();
    Pfn node = pt.rootPfn();
    for (unsigned level = 4; level >= 2; --level)
        node = pt.readEntry(node, grown, level).pfn();
    EXPECT_EQ(node, r1->basePfn + r1->slotOf(grown));
}

TEST_F(AsapFixture, VmaGrowthInvariantsHold)
{
    const auto id = space.mmap(8_MiB, "heap", true);
    const VirtAddr base = space.vmas().byId(id)->start;
    // Data frames land after the reserved regions (fresh buddy
    // allocates upward), so growth exercises the relocation path.
    for (unsigned i = 0; i < 4; ++i)
        space.touch(base + static_cast<VirtAddr>(i) * 2_MiB);
    ASSERT_TRUE(space.extendVma(id, 8_MiB));
    const AsapPtAllocator::Region *r1 = asap.regionFor(base, 1);
    // Either the region grew whole (possibly after relocating data
    // pages), or the grown slots became holes — never both, and the
    // bookkeeping must be consistent.
    EXPECT_EQ(r1->slots, 8u);
    if (r1->backedSlots == r1->slots) {
        EXPECT_EQ(asap.holesCreatedByGrowth(), 0u);
    } else {
        EXPECT_EQ(asap.holesCreatedByGrowth(),
                  r1->slots - r1->backedSlots);
    }
    // Regardless of outcome, pages in the grown area map correctly.
    const VirtAddr grown = base + 8_MiB + 2_MiB;
    space.touch(grown);
    const auto t = space.translate(grown);
    ASSERT_TRUE(t.has_value());
    if (asap.slotBacked(grown, 1))
        EXPECT_EQ(r1->entryAddrOf(grown), t->pteAddr);
}

TEST(AsapGrowthHoles, PinnedPagesForceHoles)
{
    BuddyAllocator buddy(1 << 16);
    AsapPtAllocator asap(buddy, {1, 2});
    AddressSpaceConfig config;
    config.pinnedProb = 1.0;   // every data page is pinned
    AddressSpace space(buddy, asap, config);
    space.addObserver(&asap);
    const auto id = space.mmap(8_MiB, "heap", true);
    const VirtAddr base = space.vmas().byId(id)->start;
    for (unsigned i = 0; i < 4; ++i)
        space.touch(base + static_cast<VirtAddr>(i) * 2_MiB);
    // The pinned data frames sit just past the region; growth cannot
    // relocate them, so the grown slots become holes.
    ASSERT_TRUE(space.extendVma(id, 8_MiB));
    EXPECT_GT(asap.holesCreatedByGrowth(), 0u);
    // Pages in the grown area still map via buddy fallback.
    space.touch(base + 8_MiB);
    EXPECT_TRUE(space.translate(base + 8_MiB).has_value());
}

/** Property: for random VMA sizes and random touch orders, every
 *  region-backed PL1 node obeys base+slot placement. */
class AsapPlacementProperty : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(AsapPlacementProperty, SortedPlacementHolds)
{
    BuddyAllocator buddy(1 << 16);
    AsapPtAllocator asap(buddy, {1, 2});
    AddressSpace space(buddy, asap, AddressSpaceConfig{});
    space.addObserver(&asap);
    Rng rng(GetParam());
    const std::uint64_t sizeMb = 4 + rng.below(60);
    const auto id = space.mmap(sizeMb * 1_MiB, "heap", true);
    const VirtAddr base = space.vmas().byId(id)->start;
    for (int i = 0; i < 300; ++i) {
        const VirtAddr va = base + rng.below(sizeMb * 1_MiB);
        space.touch(va);
        const auto t = space.translate(va);
        const AsapPtAllocator::Region *r1 = asap.regionFor(va, 1);
        ASSERT_NE(r1, nullptr);
        EXPECT_EQ(r1->entryAddrOf(va), t->pteAddr);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AsapPlacementProperty,
                         ::testing::Values(101, 202, 303, 404, 505));
