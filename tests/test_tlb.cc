/**
 * @file
 * Unit tests for src/tlb: plain TLB, Clustered TLB, and the hierarchy.
 */

#include <gtest/gtest.h>

#include "os/buddy_allocator.hh"
#include "os/pt_allocators.hh"
#include "pt/page_table.hh"
#include "tlb/tlb.hh"

using namespace asap;

namespace
{

Translation
xlate(Pfn pfn, unsigned level = 1)
{
    Translation t;
    t.pfn = pfn;
    t.leafLevel = level;
    return t;
}

} // namespace

TEST(Tlb, MissThenFillThenHit)
{
    Tlb tlb({"t", 64, 8});
    EXPECT_FALSE(tlb.lookup(0x1000).has_value());
    tlb.fill(0x1000, xlate(0x42));
    const auto t = tlb.lookup(0x1fff);     // same page
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->pfn, 0x42u);
    EXPECT_FALSE(tlb.lookup(0x2000).has_value());
    EXPECT_EQ(tlb.hits(), 1u);
    EXPECT_EQ(tlb.misses(), 2u);
}

TEST(Tlb, LruEvictionWithinSet)
{
    // 2 entries, 2 ways: one set.
    Tlb tlb({"t", 2, 2});
    tlb.fill(0x1000, xlate(1));
    tlb.fill(0x2000, xlate(2));
    tlb.lookup(0x1000);                    // refresh 0x1000
    tlb.fill(0x3000, xlate(3));            // evicts 0x2000
    EXPECT_TRUE(tlb.lookup(0x1000).has_value());
    EXPECT_FALSE(tlb.lookup(0x2000).has_value());
    EXPECT_TRUE(tlb.lookup(0x3000).has_value());
}

TEST(Tlb, HugePageEntryCoversTwoMb)
{
    Tlb tlb({"t", 64, 8});
    const VirtAddr base = 10ull << 21;
    tlb.fill(base, xlate(0x8000, 2));
    const auto t = tlb.lookup(base + 0x123456);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->leafLevel, 2u);
    EXPECT_EQ(t->physAddrOf(base + 0x123456),
              (0x8000ull << 12) + 0x123456);
    EXPECT_FALSE(tlb.lookup(base + (2ull << 21)).has_value());
}

TEST(Tlb, MixedPageSizesCoexist)
{
    Tlb tlb({"t", 64, 8});
    tlb.fill(0x1000, xlate(1, 1));
    tlb.fill(5ull << 21, xlate(512, 2));
    EXPECT_EQ(tlb.lookup(0x1000)->leafLevel, 1u);
    EXPECT_EQ(tlb.lookup((5ull << 21) + 0x5000)->leafLevel, 2u);
}

TEST(Tlb, LevelMaskRejectsUnsupportedSizes)
{
    Tlb tlb({"t4k", 64, 8, 0b001});   // 4KB only
    tlb.fill(0x1000, xlate(1, 1));
    EXPECT_TRUE(tlb.lookup(0x1000).has_value());
}

TEST(Tlb, FlushEmptiesEverything)
{
    Tlb tlb({"t", 64, 8});
    tlb.fill(0x1000, xlate(1));
    tlb.flush();
    EXPECT_FALSE(tlb.lookup(0x1000).has_value());
    EXPECT_EQ(tlb.misses(), 1u);   // counters reset by flush
}

TEST(Tlb, RefillSamePageUpdatesTranslation)
{
    Tlb tlb({"t", 64, 8});
    tlb.fill(0x1000, xlate(1));
    tlb.fill(0x1000, xlate(2));
    EXPECT_EQ(tlb.lookup(0x1000)->pfn, 2u);
}

/** Parameterized capacity: N distinct pages fit iff N <= entries (full
 *  assoc case). */
class TlbCapacity : public ::testing::TestWithParam<unsigned>
{};

TEST_P(TlbCapacity, HoldsExactlyCapacityFullyAssociative)
{
    const unsigned entries = GetParam();
    Tlb tlb({"t", entries, entries});   // fully associative
    for (unsigned i = 0; i < entries; ++i)
        tlb.fill(static_cast<VirtAddr>(i) << pageShift, xlate(i));
    for (unsigned i = 0; i < entries; ++i)
        EXPECT_TRUE(tlb.lookup(static_cast<VirtAddr>(i) << pageShift)
                        .has_value());
    tlb.fill(static_cast<VirtAddr>(entries) << pageShift, xlate(999));
    unsigned present = 0;
    for (unsigned i = 0; i <= entries; ++i) {
        if (tlb.lookup(static_cast<VirtAddr>(i) << pageShift))
            ++present;
    }
    EXPECT_EQ(present, entries);   // exactly one was evicted
}

INSTANTIATE_TEST_SUITE_P(Sizes, TlbCapacity,
                         ::testing::Values(4u, 8u, 16u, 64u));

// ---------------------------------------------------------------------
// Clustered TLB (Section 5.4.1 baseline)
// ---------------------------------------------------------------------

namespace
{

struct ClusteredFixture : public ::testing::Test
{
    ClusteredFixture() : buddy(1 << 16), allocator(buddy), pt(allocator)
    {}

    /** Map @p count pages from @p vpn with the given frame values. */
    void
    mapRange(Vpn vpn, std::initializer_list<Pfn> pfns)
    {
        Vpn v = vpn;
        for (const Pfn pfn : pfns)
            pt.map((v++) << pageShift, pfn);
    }

    BuddyAllocator buddy;
    BuddyPtAllocator allocator;
    PageTable pt;
    TlbConfig config{"ctlb", 64, 8};
};

} // namespace

TEST_F(ClusteredFixture, CoalescesAlignedContiguousCluster)
{
    // 8 pages, frames in the same aligned 8-frame cluster.
    mapRange(8, {64, 65, 66, 67, 68, 69, 70, 71});
    ClusteredTlb tlb(config);
    tlb.fill(8ull << pageShift, *pt.lookup(8ull << pageShift), pt);
    // All eight neighbours hit from the single fill.
    for (Vpn v = 8; v < 16; ++v) {
        const auto t = tlb.lookup(v << pageShift);
        ASSERT_TRUE(t.has_value()) << v;
        EXPECT_EQ(t->pfn, 64 + (v - 8));
    }
    EXPECT_DOUBLE_EQ(tlb.averageClusterOccupancy(), 8.0);
}

TEST_F(ClusteredFixture, CoalescesPermutedCluster)
{
    // Clustered TLB (unlike CoLT) tolerates permutation within the
    // physical cluster.
    mapRange(16, {71, 70, 69, 68, 67, 66, 65, 64});
    ClusteredTlb tlb(config);
    tlb.fill(16ull << pageShift, *pt.lookup(16ull << pageShift), pt);
    for (Vpn v = 16; v < 24; ++v) {
        const auto t = tlb.lookup(v << pageShift);
        ASSERT_TRUE(t.has_value());
        EXPECT_EQ(t->pfn, 71 - (v - 16));
    }
}

TEST_F(ClusteredFixture, ScatteredFramesDoNotCoalesce)
{
    // Frames in different physical clusters: only the triggering page
    // is covered.
    mapRange(24, {64, 128, 72, 200, 80, 300, 90, 400});
    ClusteredTlb tlb(config);
    tlb.fill(24ull << pageShift, *pt.lookup(24ull << pageShift), pt);
    EXPECT_TRUE(tlb.lookup(24ull << pageShift).has_value());
    EXPECT_FALSE(tlb.lookup(25ull << pageShift).has_value());
    EXPECT_DOUBLE_EQ(tlb.averageClusterOccupancy(), 1.0);
}

TEST_F(ClusteredFixture, PartialClusterCoalesces)
{
    // Only 4 of 8 pages mapped, all in one physical cluster.
    mapRange(32, {64, 65, 66, 67});
    ClusteredTlb tlb(config);
    tlb.fill(32ull << pageShift, *pt.lookup(32ull << pageShift), pt);
    for (Vpn v = 32; v < 36; ++v)
        EXPECT_TRUE(tlb.lookup(v << pageShift).has_value());
    EXPECT_FALSE(tlb.lookup(36ull << pageShift).has_value());
}

TEST_F(ClusteredFixture, UnalignedPhysicalRunSplitsAcrossClusters)
{
    // VPNs 40..47 -> PFNs 66..73: spans two aligned frame clusters
    // (64..71 and 72..79). Only pages whose frame lands in the
    // trigger's cluster coalesce.
    mapRange(40, {66, 67, 68, 69, 70, 71, 72, 73});
    ClusteredTlb tlb(config);
    tlb.fill(40ull << pageShift, *pt.lookup(40ull << pageShift), pt);
    for (Vpn v = 40; v < 46; ++v)    // frames 66..71: cluster 8
        EXPECT_TRUE(tlb.lookup(v << pageShift).has_value()) << v;
    EXPECT_FALSE(tlb.lookup(46ull << pageShift).has_value());
}

TEST_F(ClusteredFixture, EvictionReplacesWholeEntry)
{
    ClusteredTlb tlb({"c", 1, 1});
    mapRange(8, {64, 65});
    mapRange(512, {128, 129});
    tlb.fill(8ull << pageShift, *pt.lookup(8ull << pageShift), pt);
    tlb.fill(512ull << pageShift, *pt.lookup(512ull << pageShift), pt);
    EXPECT_FALSE(tlb.lookup(8ull << pageShift).has_value());
    EXPECT_TRUE(tlb.lookup(513ull << pageShift).has_value());
}

TEST_F(ClusteredFixture, LargePageFillIgnored)
{
    ClusteredTlb tlb(config);
    Translation huge = xlate(512, 2);
    tlb.fill(0x400000, huge, pt);
    EXPECT_FALSE(tlb.lookup(0x400000).has_value());
}

// ---------------------------------------------------------------------
// TlbHierarchy
// ---------------------------------------------------------------------

TEST(TlbHierarchy, L2HitPromotesToL1)
{
    TlbHierarchy::Config config;
    config.l1 = {"l1", 4, 4};
    config.l2 = {"l2", 64, 8};
    TlbHierarchy tlb(config);
    tlb.fill(0x1000, xlate(1));
    // Evict from the tiny L1 by filling other pages.
    for (int i = 2; i <= 6; ++i)
        tlb.fill(static_cast<VirtAddr>(i) << pageShift, xlate(i));
    const auto first = tlb.lookup(0x1000);
    EXPECT_EQ(first.level, TlbHitLevel::L2);
    const auto second = tlb.lookup(0x1000);
    EXPECT_EQ(second.level, TlbHitLevel::L1);   // promoted
}

TEST(TlbHierarchy, MissesCountedAtL2Boundary)
{
    TlbHierarchy tlb(TlbHierarchy::Config{});
    tlb.lookup(0x1000);
    tlb.lookup(0x2000);
    EXPECT_EQ(tlb.l2Misses(), 2u);
    tlb.fill(0x1000, xlate(1));
    tlb.lookup(0x1000);
    EXPECT_EQ(tlb.l2Misses(), 2u);
    EXPECT_EQ(tlb.lookups(), 3u);
}

TEST(TlbHierarchy, ClusteredL2IncreasesReach)
{
    BuddyAllocator buddy(1 << 16);
    BuddyPtAllocator allocator(buddy);
    PageTable pt(allocator);
    // 64 VA-contiguous pages backed by 64 contiguous frames.
    for (Vpn v = 0; v < 64; ++v)
        pt.map(v << pageShift, 256 + v);

    TlbHierarchy::Config plainConfig;
    plainConfig.l1 = {"l1", 4, 4};
    plainConfig.l2 = {"l2", 4, 4};
    TlbHierarchy plain(plainConfig);

    TlbHierarchy::Config clusteredConfig = plainConfig;
    clusteredConfig.clusteredL2 = true;
    TlbHierarchy clustered(clusteredConfig);

    // Fill with every 8th page, then probe all 64 pages.
    for (Vpn v = 0; v < 64; v += 8) {
        plain.fill(v << pageShift, *pt.lookup(v << pageShift), &pt);
        clustered.fill(v << pageShift, *pt.lookup(v << pageShift), &pt);
    }
    unsigned plainHits = 0, clusteredHits = 0;
    for (Vpn v = 0; v < 64; ++v) {
        if (plain.lookup(v << pageShift).hit())
            ++plainHits;
        if (clustered.lookup(v << pageShift).hit())
            ++clusteredHits;
    }
    EXPECT_LE(plainHits, 8u);
    // The 4-entry clustered TLB retains 4 cluster entries x 8 pages.
    EXPECT_EQ(clusteredHits, 32u);
    EXPECT_GT(clusteredHits, 3 * plainHits);
}

TEST(TlbHierarchy, ClusteredHitReturnsCorrectFrame)
{
    BuddyAllocator buddy(1 << 16);
    BuddyPtAllocator allocator(buddy);
    PageTable pt(allocator);
    for (Vpn v = 0; v < 8; ++v)
        pt.map(v << pageShift, 512 + v);
    TlbHierarchy::Config config;
    config.clusteredL2 = true;
    TlbHierarchy tlb(config);
    tlb.fill(0, *pt.lookup(0), &pt);
    for (Vpn v = 0; v < 8; ++v) {
        const auto res = tlb.lookup(v << pageShift);
        ASSERT_TRUE(res.hit());
        EXPECT_EQ(res.translation.pfn, 512 + v);
    }
}

TEST(TlbHierarchy, PaperGeometryDefaults)
{
    TlbHierarchy::Config config;
    EXPECT_EQ(config.l1.entries, 64u);
    EXPECT_EQ(config.l1.ways, 8u);
    EXPECT_EQ(config.l2.entries, 1536u);
    EXPECT_EQ(config.l2.ways, 6u);
}
