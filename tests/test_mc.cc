/**
 * @file
 * Multi-core machine model (src/mc): serial bit-identity on the
 * degenerate 1-core/1-tenant shape, scheduler determinism (including
 * across SweepRunner thread counts), the full-range-shootdown vs
 * Machine::flush differential, per-tenant/aggregate merge exactness,
 * and initiator attribution of IPI shootdown cost.
 */

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "golden_scenarios.hh"
#include "common/logging.hh"
#include "exp/sweep.hh"
#include "mc/multicore.hh"
#include "obs/timeline.hh"
#include "obs/trace_sink.hh"
#include "sim/environment.hh"
#include "workloads/dynamic.hh"
#include "workloads/synthetic.hh"

using namespace asap;

namespace
{

/** One tenant's OS state + stream, built fresh and deterministically
 *  (bypassing Environment, like the golden scenarios). */
struct TenantHarness
{
    std::unique_ptr<System> system;
    std::unique_ptr<Workload> workload;
};

TenantHarness
makeTenant(const WorkloadSpec &spec, const EnvironmentOptions &env)
{
    TenantHarness tenant;
    tenant.system = std::make_unique<System>(makeSystemConfig(spec, env));
    tenant.workload = makeWorkload(spec);
    tenant.workload->setup(*tenant.system);
    return tenant;
}

void
expectFlattenEqual(const golden::Expect &a, const golden::Expect &b)
{
    EXPECT_EQ(a.tlbL1Hits, b.tlbL1Hits);
    EXPECT_EQ(a.tlbL2Hits, b.tlbL2Hits);
    EXPECT_EQ(a.tlbMisses, b.tlbMisses);
    EXPECT_EQ(a.faults, b.faults);
    EXPECT_EQ(a.walkCount, b.walkCount);
    EXPECT_EQ(a.walkSum, b.walkSum);
    EXPECT_EQ(a.walkMin, b.walkMin);
    EXPECT_EQ(a.walkMax, b.walkMax);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.walkCycles, b.walkCycles);
    EXPECT_EQ(a.dataCycles, b.dataCycles);
    EXPECT_EQ(a.computeCycles, b.computeCycles);
    for (unsigned i = 0; i < 5; ++i) {
        EXPECT_EQ(a.levelTotal[i], b.levelTotal[i]);
        EXPECT_EQ(a.levelPwc[i], b.levelPwc[i]);
        EXPECT_EQ(a.levelDram[i], b.levelDram[i]);
    }
    EXPECT_EQ(a.appTriggers, b.appTriggers);
    EXPECT_EQ(a.appRangeHits, b.appRangeHits);
    EXPECT_EQ(a.appAttempted, b.appAttempted);
    EXPECT_EQ(a.appIssued, b.appIssued);
    EXPECT_EQ(a.hostIssued, b.hostIssued);
}

void
expectCountersEqual(const RunStats &a, const RunStats &b)
{
    ASSERT_EQ(a.counters.size(), b.counters.size());
    for (std::size_t i = 0; i < a.counters.size(); ++i) {
        EXPECT_EQ(a.counters[i].first, b.counters[i].first);
        EXPECT_EQ(a.counters[i].second, b.counters[i].second)
            << a.counters[i].first;
    }
}

void
expectDynEqual(const OsDynStats &a, const OsDynStats &b)
{
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.mmaps, b.mmaps);
    EXPECT_EQ(a.munmaps, b.munmaps);
    EXPECT_EQ(a.minorFaults, b.minorFaults);
    EXPECT_EQ(a.madviseFrees, b.madviseFrees);
    EXPECT_EQ(a.extends, b.extends);
    EXPECT_EQ(a.churnReleases, b.churnReleases);
    EXPECT_EQ(a.dataPagesFreed, b.dataPagesFreed);
    EXPECT_EQ(a.ptNodesFreed, b.ptNodesFreed);
    EXPECT_EQ(a.churnFramesReleased, b.churnFramesReleased);
    EXPECT_EQ(a.tlbInvalidated, b.tlbInvalidated);
    EXPECT_EQ(a.pwcInvalidated, b.pwcInvalidated);
    EXPECT_EQ(a.regionGrowthHoles, b.regionGrowthHoles);
    EXPECT_EQ(a.regionRelocations, b.regionRelocations);
    EXPECT_EQ(a.regionsReleased, b.regionsReleased);
    EXPECT_EQ(a.regionFramesReleased, b.regionFramesReleased);
}

/** Run a golden scenario through the mc model, 1 core / 1 tenant. */
mc::McResult
runScenarioMc(const golden::Scenario &scenario, std::uint64_t quantum)
{
    const WorkloadSpec spec = golden::goldenSpec();
    TenantHarness tenant = makeTenant(spec, scenario.env);
    mc::McConfig mcConfig;
    mcConfig.quantum = quantum;
    mc::MultiCoreSimulator sim(mcConfig, scenario.machine);
    sim.addTenant(*tenant.system, *tenant.workload);
    return sim.run(golden::goldenRunConfig(scenario.colocation));
}

} // namespace

// ---------------------------------------------------------------------------
// 1-core / 1-tenant bit-identity with the serial Simulator
// ---------------------------------------------------------------------------

TEST(McSerialIdentity, GoldenScenariosBitIdentical)
{
    for (const golden::Scenario &scenario : golden::goldenScenarios()) {
        SCOPED_TRACE(scenario.name);
        const RunStats serial = golden::runScenario(scenario);
        const mc::McResult result = runScenarioMc(scenario, 8192);
        const RunStats &agg = result.aggregate;

        expectFlattenEqual(golden::flatten(serial),
                           golden::flatten(agg));
        EXPECT_EQ(serial.accesses, agg.accesses);
        expectCountersEqual(serial, agg);
        expectDynEqual(serial.dyn, agg.dyn);
        EXPECT_EQ(serial.walkHist.p50(), agg.walkHist.p50());
        EXPECT_EQ(serial.walkHist.p99(), agg.walkHist.p99());
        EXPECT_EQ(serial.walkHist.p999(), agg.walkHist.p999());
        EXPECT_EQ(serial.dataHist.p50(), agg.dataHist.p50());
        EXPECT_EQ(serial.dataHist.p99(), agg.dataHist.p99());

        // The per-tenant view of a 1-tenant run is the aggregate.
        ASSERT_EQ(result.tenants.size(), 1u);
        expectFlattenEqual(golden::flatten(serial),
                           golden::flatten(result.tenants[0]));
    }
}

TEST(McSerialIdentity, QuantumSizeIsStatsNeutral)
{
    // Batch/quantum boundaries carry no per-access state, so any
    // quantum must reproduce the serial run bit-for-bit (an awkward
    // prime crosses the warmup/measure boundary mid-quantum).
    const golden::Scenario native = golden::goldenScenarios().front();
    const RunStats serial = golden::runScenario(native);
    const mc::McResult odd = runScenarioMc(native, 123);
    expectFlattenEqual(golden::flatten(serial),
                       golden::flatten(odd.aggregate));
    expectCountersEqual(serial, odd.aggregate);
}

TEST(McSerialIdentity, DynamicRunBitIdentical)
{
    // The shootdown path differs structurally (ShootdownTarget proxy
    // vs direct Machine), so pin a churn-heavy dynamic run too.
    const WorkloadSpec spec =
        withDynamics(golden::goldenSpec(), "tenants", 1.0, 3'000);
    const RunConfig run = golden::goldenRunConfig(false);

    TenantHarness serialTenant = makeTenant(spec, {});
    ASSERT_NE(serialTenant.workload->events(), nullptr);
    Machine machine(*serialTenant.system, MachineConfig{});
    Simulator simulator(*serialTenant.system, machine,
                        *serialTenant.workload);
    const RunStats serial = simulator.run(run);
    EXPECT_GT(serial.dyn.events, 0u);

    TenantHarness mcTenant = makeTenant(spec, {});
    mc::MultiCoreSimulator sim(mc::McConfig{}, MachineConfig{});
    sim.addTenant(*mcTenant.system, *mcTenant.workload);
    const mc::McResult result = sim.run(run);

    expectFlattenEqual(golden::flatten(serial),
                       golden::flatten(result.aggregate));
    expectDynEqual(serial.dyn, result.aggregate.dyn);
    expectCountersEqual(serial, result.aggregate);
}

// ---------------------------------------------------------------------------
// Scheduler determinism
// ---------------------------------------------------------------------------

namespace
{

mc::McResult
runMulti(unsigned cores, unsigned tenantCount, bool pcid,
         const WorkloadSpec &spec, const RunConfig &run)
{
    mc::McConfig mcConfig;
    mcConfig.cores = cores;
    mcConfig.pcid = pcid;
    mcConfig.quantum = 2048;
    mc::MultiCoreSimulator sim(mcConfig, MachineConfig{});
    std::vector<TenantHarness> tenants;
    for (unsigned t = 0; t < tenantCount; ++t) {
        tenants.push_back(makeTenant(spec, {}));
        sim.addTenant(*tenants.back().system,
                      *tenants.back().workload);
    }
    return sim.run(run);
}

} // namespace

TEST(McScheduler, DeterministicAcrossRepeatedRuns)
{
    const WorkloadSpec spec =
        withDynamics(golden::goldenSpec(), "tenants", 1.0, 3'000);
    RunConfig run = golden::goldenRunConfig(false);
    run.warmupAccesses = 2'000;
    run.measureAccesses = 8'000;

    const mc::McResult a = runMulti(2, 3, true, spec, run);
    const mc::McResult b = runMulti(2, 3, true, spec, run);

    expectCountersEqual(a.aggregate, b.aggregate);
    EXPECT_EQ(a.slots, b.slots);
    EXPECT_EQ(a.maxCoreCycle, b.maxCoreCycle);
    ASSERT_EQ(a.tenants.size(), b.tenants.size());
    for (std::size_t t = 0; t < a.tenants.size(); ++t) {
        expectFlattenEqual(golden::flatten(a.tenants[t]),
                           golden::flatten(b.tenants[t]));
        EXPECT_EQ(a.tenantMc[t].shootdowns, b.tenantMc[t].shootdowns);
        EXPECT_EQ(a.tenantMc[t].ipisSent, b.tenantMc[t].ipisSent);
        EXPECT_EQ(a.tenantMc[t].ipiSendWaitCycles,
                  b.tenantMc[t].ipiSendWaitCycles);
        EXPECT_EQ(a.tenantMc[t].ipiRemoteCycles,
                  b.tenantMc[t].ipiRemoteCycles);
    }
    for (std::size_t c = 0; c < a.coreMc.size(); ++c) {
        EXPECT_EQ(a.coreMc[c].switches, b.coreMc[c].switches);
        EXPECT_EQ(a.coreMc[c].ipisReceived, b.coreMc[c].ipisReceived);
    }
}

TEST(McScheduler, SweepCsvIdenticalAcrossJobCounts)
{
    // The sweep layer runs mc probes like any other probe cell;
    // thread count must not leak into results (the ASAP_JOBS
    // invariant). Two tenant-count rows, mc run inside the probe.
    const auto makeSweep = [] {
        exp::SweepSpec sweep("mc_determinism");
        for (const unsigned tenantCount : {2u, 3u}) {
            WorkloadSpec spec = golden::goldenSpec();
            spec.name = strprintf("mc_t%u", tenantCount);
            sweep.addProbe(
                spec, {}, spec.name, "mc",
                [tenantCount](Environment &, exp::CellResult &cell) {
                    const WorkloadSpec tenantSpec = golden::goldenSpec();
                    RunConfig run = golden::goldenRunConfig(false);
                    run.warmupAccesses = 1'000;
                    run.measureAccesses = 4'000;
                    mc::McConfig mcConfig;
                    mcConfig.cores = 2;
                    mcConfig.quantum = 1024;
                    mc::MultiCoreSimulator sim(mcConfig,
                                               MachineConfig{});
                    std::vector<TenantHarness> tenants;
                    for (unsigned t = 0; t < tenantCount; ++t) {
                        tenants.push_back(makeTenant(tenantSpec, {}));
                        sim.addTenant(*tenants.back().system,
                                      *tenants.back().workload);
                    }
                    const mc::McResult result = sim.run(run);
                    cell.extra["aggAccesses"] = static_cast<double>(
                        result.aggregate.accesses);
                    cell.extra["aggWalkP99"] = static_cast<double>(
                        result.aggregate.walkHist.p99());
                    cell.extra["slots"] =
                        static_cast<double>(result.slots);
                    cell.extra["maxCoreCycle"] =
                        static_cast<double>(result.maxCoreCycle);
                });
        }
        return sweep;
    };

    const exp::ResultSet serial =
        exp::SweepRunner(1).run(makeSweep());
    const exp::ResultSet parallel =
        exp::SweepRunner(4).run(makeSweep());
    EXPECT_EQ(serial.toCsv(), parallel.toCsv());
    EXPECT_GT(serial.extra("mc_t2", "mc", "aggAccesses"), 0.0);
}

// ---------------------------------------------------------------------------
// Full-range shootdown vs Machine::flush differential
// ---------------------------------------------------------------------------

TEST(McShootdown, FullRangeShootdownEqualsFlush)
{
    struct Shape
    {
        unsigned cores, tenants;
        bool pcid;
        std::uint64_t seed;
    };
    const std::vector<Shape> shapes = {
        {2, 2, true, 7}, {3, 3, true, 11}, {4, 2, true, 13},
        {2, 2, false, 17},
    };
    for (const Shape &shape : shapes) {
        SCOPED_TRACE(strprintf("cores=%u tenants=%u pcid=%d seed=%lu",
                               shape.cores, shape.tenants,
                               shape.pcid ? 1 : 0, shape.seed));
        const WorkloadSpec spec = golden::goldenSpec();
        RunConfig run = golden::goldenRunConfig(false);
        run.warmupAccesses = 2'000;
        run.measureAccesses = 6'000;
        run.seed = shape.seed;

        mc::McConfig mcConfig;
        mcConfig.cores = shape.cores;
        mcConfig.pcid = shape.pcid;
        mcConfig.quantum = 1024;
        mc::MultiCoreSimulator sim(mcConfig, MachineConfig{});
        std::vector<TenantHarness> tenants;
        for (unsigned t = 0; t < shape.tenants; ++t) {
            tenants.push_back(makeTenant(spec, {}));
            sim.addTenant(*tenants.back().system,
                          *tenants.back().workload);
        }
        sim.run(run);

        // Pre-state: resident entries and lifetime lookup counters.
        std::uint64_t preTlbValid = 0, prePwcValid = 0;
        std::vector<std::uint64_t> preLookups;
        for (unsigned c = 0; c < shape.cores; ++c) {
            preTlbValid += sim.coreTlb(c).l1ValidEntries() +
                           sim.coreTlb(c).l2ValidEntries();
            preLookups.push_back(sim.coreTlb(c).lookups());
            for (unsigned t = 0; t < shape.tenants; ++t)
                prePwcValid +=
                    sim.machineOf(t, c).appPwc().validEntries();
        }
        EXPECT_GT(preTlbValid, 0u);

        Machine::InvalidateCounts total;
        for (unsigned t = 0; t < shape.tenants; ++t) {
            const Machine::InvalidateCounts counts =
                sim.shootdownAll(t);
            total.tlb += counts.tlb;
            total.pwc += counts.pwc;
        }

        // Machine::flush post-state: everything dropped, counters
        // kept. The drop counts must account for every resident entry
        // (PCID presence masks are exact supersets; without PCID,
        // stale PWC images on non-present cores are unreachable and
        // may legitimately survive).
        EXPECT_EQ(total.tlb, preTlbValid);
        if (shape.pcid)
            EXPECT_EQ(total.pwc, prePwcValid);
        else
            EXPECT_LE(total.pwc, prePwcValid);
        for (unsigned c = 0; c < shape.cores; ++c) {
            EXPECT_EQ(sim.coreTlb(c).l1ValidEntries(), 0u);
            EXPECT_EQ(sim.coreTlb(c).l2ValidEntries(), 0u);
            EXPECT_EQ(sim.coreTlb(c).lookups(), preLookups[c]);
            if (shape.pcid) {
                for (unsigned t = 0; t < shape.tenants; ++t) {
                    EXPECT_EQ(
                        sim.machineOf(t, c).appPwc().validEntries(),
                        0u);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Per-tenant stats merge exactly into the aggregate
// ---------------------------------------------------------------------------

TEST(McStats, TenantStatsSumToAggregate)
{
    const WorkloadSpec spec =
        withDynamics(golden::goldenSpec(), "tenants", 1.0, 3'000);
    RunConfig run = golden::goldenRunConfig(false);
    run.warmupAccesses = 2'000;
    run.measureAccesses = 8'000;

    const mc::McResult result = runMulti(2, 3, true, spec, run);

    RunStats merged;
    for (const RunStats &tenant : result.tenants)
        merged.merge(tenant);

    const RunStats &agg = result.aggregate;
    EXPECT_EQ(merged.accesses, agg.accesses);
    EXPECT_EQ(merged.tlbL1Hits, agg.tlbL1Hits);
    EXPECT_EQ(merged.tlbL2Hits, agg.tlbL2Hits);
    EXPECT_EQ(merged.tlbMisses, agg.tlbMisses);
    EXPECT_EQ(merged.faults, agg.faults);
    EXPECT_EQ(merged.walkLatency.count(), agg.walkLatency.count());
    EXPECT_EQ(merged.walkLatency.sum(), agg.walkLatency.sum());
    EXPECT_EQ(merged.totalCycles, agg.totalCycles);
    EXPECT_EQ(merged.walkCycles, agg.walkCycles);
    EXPECT_EQ(merged.dataCycles, agg.dataCycles);
    EXPECT_EQ(merged.computeCycles, agg.computeCycles);
    EXPECT_EQ(merged.walkHist.p50(), agg.walkHist.p50());
    EXPECT_EQ(merged.walkHist.p99(), agg.walkHist.p99());
    EXPECT_EQ(merged.dataHist.p99(), agg.dataHist.p99());
    expectDynEqual(merged.dyn, agg.dyn);
    EXPECT_EQ(merged.appAsap.triggers, agg.appAsap.triggers);
    EXPECT_EQ(merged.appAsap.issued, agg.appAsap.issued);

    // The assembled aggregate counter list carries the mc.* telemetry
    // (multi-tenant shape) and its dyn slice equals the merged one.
    bool sawIpis = false;
    for (const auto &[name, value] : agg.counters) {
        if (name == "mc.ipisSent") {
            sawIpis = true;
            std::uint64_t sum = 0;
            for (const mc::TenantStats &t : result.tenantMc)
                sum += t.ipisSent;
            EXPECT_EQ(value, sum);
        }
        if (name == "dyn.events")
            EXPECT_EQ(value, merged.dyn.events);
    }
    EXPECT_TRUE(sawIpis);
}

// ---------------------------------------------------------------------------
// IPI cost: initiator attribution
// ---------------------------------------------------------------------------

TEST(McIpi, ShootdownCostLandsOnInitiatingTenant)
{
    // Tenant 0 churns (munmaps/madvise -> shootdowns); tenant 1 is a
    // static co-tenant. With 2 cores and rotation both tenants visit
    // both cores, so tenant 0's shootdowns must raise remote IPIs —
    // and every IPI cycle must be attributed to tenant 0, none to the
    // victim.
    const WorkloadSpec churny =
        withDynamics(golden::goldenSpec(), "tenants", 1.0, 2'000);
    const WorkloadSpec quiet = golden::goldenSpec();
    RunConfig run = golden::goldenRunConfig(false);
    run.warmupAccesses = 2'000;
    run.measureAccesses = 10'000;

    mc::McConfig mcConfig;
    mcConfig.cores = 2;
    mcConfig.quantum = 1024;
    mc::MultiCoreSimulator sim(mcConfig, MachineConfig{});
    TenantHarness t0 = makeTenant(churny, {});
    TenantHarness t1 = makeTenant(quiet, {});
    obs::TraceSink sink(1u << 16);
    sink.setEnabled(true);
    sim.addTenant(*t0.system, *t0.workload);
    sim.addTenant(*t1.system, *t1.workload);
    sim.attachTraceSink(&sink);
    const mc::McResult result = sim.run(run);

    ASSERT_EQ(result.tenantMc.size(), 2u);
    EXPECT_GT(result.tenantMc[0].shootdowns, 0u);
    EXPECT_GT(result.tenantMc[0].ipisSent, 0u);
    EXPECT_GT(result.tenantMc[0].ipiSendWaitCycles, 0u);
    EXPECT_GT(result.tenantMc[0].ipiRemoteCycles, 0u);
    // The victim initiated nothing and is charged nothing.
    EXPECT_EQ(result.tenantMc[1].shootdowns, 0u);
    EXPECT_EQ(result.tenantMc[1].ipisSent, 0u);
    EXPECT_EQ(result.tenantMc[1].ipiSendWaitCycles, 0u);
    EXPECT_EQ(result.tenantMc[1].ipiRemoteCycles, 0u);

    // Remote interrupt time appears on core clocks and as Ipi trace
    // events, consistent with the attribution totals.
    std::uint64_t received = 0;
    Cycles interruptCycles = 0;
    for (const mc::CoreStats &core : result.coreMc) {
        received += core.ipisReceived;
        interruptCycles += core.ipiInterruptCycles;
    }
    EXPECT_EQ(received, result.tenantMc[0].ipisSent);
    EXPECT_EQ(interruptCycles, result.tenantMc[0].ipiRemoteCycles);
    EXPECT_EQ(sink.countOf(obs::EventKind::Ipi), received);
}

// ---------------------------------------------------------------------------
// Timeline integration (per-core gauges, slot-boundary epochs)
// ---------------------------------------------------------------------------

TEST(McTimeline, PerCoreGaugesAndDeltaSumIdentity)
{
    const WorkloadSpec spec = golden::goldenSpec();
    RunConfig run = golden::goldenRunConfig(false);
    run.warmupAccesses = 2'000;
    run.measureAccesses = 8'000;

    mc::McConfig mcConfig;
    mcConfig.cores = 2;
    mcConfig.quantum = 1024;
    mc::MultiCoreSimulator sim(mcConfig, MachineConfig{});
    std::vector<TenantHarness> tenants;
    for (unsigned t = 0; t < 2; ++t) {
        tenants.push_back(makeTenant(spec, {}));
        sim.addTenant(*tenants.back().system,
                      *tenants.back().workload);
    }
    obs::Timeline timeline(4'000);
    timeline.setEnabled(true);
    sim.attachTimeline(&timeline);
    const mc::McResult result = sim.run(run);

    ASSERT_GE(timeline.epochCount(), 2u);
    // Per-core gauge tracks exist for both cores.
    bool core0 = false, core1 = false;
    for (const std::string &name : timeline.gaugeNames()) {
        if (name == "core0.tlb.l1Valid")
            core0 = true;
        if (name == "core1.tlb.l1Valid")
            core1 = true;
    }
    EXPECT_TRUE(core0);
    EXPECT_TRUE(core1);

    // Delta-sum identity: the final boundary's cumulative counters are
    // the aggregate's counter snapshot, bit for bit.
    const auto &names = timeline.counterNames();
    const auto &last = timeline.lastCounters();
    ASSERT_EQ(names.size(), result.aggregate.counters.size());
    ASSERT_EQ(last.size(), names.size());
    for (std::size_t i = 0; i < names.size(); ++i) {
        EXPECT_EQ(names[i], result.aggregate.counters[i].first);
        EXPECT_EQ(last[i], result.aggregate.counters[i].second)
            << names[i];
    }
}
