/**
 * @file
 * OS-dynamics subsystem tests (src/dyn): event-stream serialization,
 * targeted TLB/PWC/clustered-TLB invalidation (unit + differential
 * against full flush over randomized configs), System-level munmap /
 * madvise teardown incl. ASAP region release, stale-translation
 * correctness after madvise + shootdown, zero-event equivalence with
 * the pinned Golden scenarios, end-to-end churn runs, and bit-identical
 * record -> replay of dynamic runs through the ASAPTRC2 event-op chunk.
 */

#include <cstdio>
#include <vector>

#include <gtest/gtest.h>

#include "dyn/dynamics.hh"
#include "dyn/os_events.hh"
#include "exp/sweep.hh"
#include "expect_status.hh"
#include "golden_scenarios.hh"
#include "sim/environment.hh"
#include "trace/convert.hh"
#include "workloads/dynamic.hh"
#include "workloads/trace.hh"

using namespace asap;

namespace
{

WorkloadSpec
tinySpec()
{
    WorkloadSpec spec;
    spec.name = "dyntiny";
    spec.paperGb = 1.0;
    spec.residentPages = 20'000;
    spec.dataVmas = 2;
    spec.smallVmas = 4;
    spec.cyclesPerAccess = 3;
    spec.windowFraction = 0.6;
    spec.windowPages = 2'000;
    spec.nearFraction = 0.1;
    spec.linesPerPage = 2;
    spec.burstContinueProb = 0.5;
    spec.machineMemBytes = 1_GiB;
    spec.guestMemBytes = 256_MiB;
    spec.churnOps = 20'000;
    return spec;
}

RunConfig
tinyRun()
{
    RunConfig run;
    run.warmupAccesses = 20'000;
    run.measureAccesses = 80'000;
    run.seed = 7;
    return run;
}

bool
sameStats(const golden::Expect &a, const golden::Expect &b)
{
    return a.tlbL1Hits == b.tlbL1Hits && a.tlbL2Hits == b.tlbL2Hits &&
           a.tlbMisses == b.tlbMisses && a.faults == b.faults &&
           a.walkCount == b.walkCount && a.walkSum == b.walkSum &&
           a.walkMin == b.walkMin && a.walkMax == b.walkMax &&
           a.totalCycles == b.totalCycles &&
           a.walkCycles == b.walkCycles && a.dataCycles == b.dataCycles &&
           a.computeCycles == b.computeCycles &&
           a.levelTotal == b.levelTotal && a.levelPwc == b.levelPwc &&
           a.levelDram == b.levelDram && a.appTriggers == b.appTriggers &&
           a.appRangeHits == b.appRangeHits &&
           a.appAttempted == b.appAttempted &&
           a.appIssued == b.appIssued && a.hostIssued == b.hostIssued;
}

} // namespace

// ---------------------------------------------------------------------------
// Event-stream serialization
// ---------------------------------------------------------------------------

TEST(OsEvents, EncodeDecodeRoundTrip)
{
    OsEventStream stream;
    OsEvent mmap;
    mmap.atAccess = 1'000;
    mmap.kind = OsEventKind::Mmap;
    mmap.handle = 0;
    mmap.bytes = 64 * pageSize;
    mmap.prefetchable = true;
    stream.add(mmap);

    OsEvent fault;
    fault.atAccess = 1'000;
    fault.kind = OsEventKind::MinorFault;
    fault.handle = 0;
    fault.addr = 8 * pageSize;
    fault.pages = 16;
    stream.add(fault);

    OsEvent madvise;
    madvise.atAccess = 50'000;
    madvise.kind = OsEventKind::MadviseFree;
    madvise.addr = 0x10000000000ull + 123 * pageSize;
    madvise.pages = 200;
    stream.add(madvise);

    OsEvent release;
    release.atAccess = 70'000;
    release.kind = OsEventKind::ReleaseChurn;
    release.pages = 250;
    stream.add(release);

    OsEvent munmap;
    munmap.atAccess = 90'000;
    munmap.kind = OsEventKind::Munmap;
    munmap.handle = 0;
    stream.add(munmap);

    const std::string bytes = stream.encode();
    const OsEventStream decoded = OsEventStream::decode(
        reinterpret_cast<const std::uint8_t *>(bytes.data()),
        reinterpret_cast<const std::uint8_t *>(bytes.data()) +
            bytes.size(),
        "<test>");
    ASSERT_EQ(decoded.size(), stream.size());
    for (std::size_t i = 0; i < stream.size(); ++i) {
        const OsEvent &a = stream.events()[i];
        const OsEvent &b = decoded.events()[i];
        EXPECT_EQ(a.atAccess, b.atAccess) << i;
        EXPECT_EQ(static_cast<int>(a.kind), static_cast<int>(b.kind));
        EXPECT_EQ(a.handle, b.handle) << i;
        EXPECT_EQ(a.addr, b.addr) << i;
        EXPECT_EQ(a.pages, b.pages) << i;
        EXPECT_EQ(a.bytes, b.bytes) << i;
        EXPECT_EQ(a.prefetchable, b.prefetchable) << i;
    }
}

TEST(OsEvents, DecodeRejectsUndefinedHandle)
{
    OsEventStream stream;
    OsEvent munmap;
    munmap.atAccess = 10;
    munmap.kind = OsEventKind::Munmap;
    munmap.handle = 5;          // never defined by an Mmap
    stream.add(munmap);
    const std::string bytes = stream.encode();
    testutil::expectStatusError(
        [&] {
            OsEventStream::decode(
                reinterpret_cast<const std::uint8_t *>(bytes.data()),
                reinterpret_cast<const std::uint8_t *>(bytes.data()) +
                    bytes.size(),
                "<test>");
        },
        StatusCode::DataLoss, "undefined handle");
}

// ---------------------------------------------------------------------------
// Targeted invalidation units
// ---------------------------------------------------------------------------

TEST(Invalidate, TlbRangeDropsOnlyOverlappingPages)
{
    Tlb tlb(TlbConfig{"T", 64, 8});
    Translation t;
    t.leafLevel = 1;
    for (unsigned page = 0; page < 32; ++page) {
        t.pfn = 1'000 + page;
        tlb.fill(page * pageSize, t);
    }
    // Also a 2MB entry far away.
    t.leafLevel = 2;
    t.pfn = 9'000;
    tlb.fill(64 * levelSpan(2), t);

    const std::uint64_t dropped =
        tlb.invalidateRange(8 * pageSize, 16 * pageSize);
    EXPECT_EQ(dropped, 8u);
    for (unsigned page = 0; page < 32; ++page) {
        const auto hit = tlb.lookup(page * pageSize);
        if (page >= 8 && page < 16)
            EXPECT_FALSE(hit.has_value()) << page;
        else
            ASSERT_TRUE(hit.has_value()) << page;
    }
    EXPECT_TRUE(tlb.lookup(64 * levelSpan(2)).has_value());

    // A range overlapping the 2MB page drops it even when the range is
    // a single 4KB page inside it.
    EXPECT_EQ(tlb.invalidateRange(64 * levelSpan(2) + 5 * pageSize,
                                  64 * levelSpan(2) + 6 * pageSize),
              1u);
    EXPECT_FALSE(tlb.lookup(64 * levelSpan(2)).has_value());
}

TEST(Invalidate, ClusteredTlbDropsOverlappingClusters)
{
    SystemConfig config;
    config.machineMemBytes = 256_MiB;
    System system(config);
    const auto id = system.mmap(1_MiB, "heap", true);
    const VirtAddr base = system.appSpace().vmas().byId(id)->start;
    for (unsigned page = 0; page < 64; ++page)
        system.touch(base + page * pageSize);

    ClusteredTlb tlb(TlbConfig{"C", 64, 8});
    for (unsigned page = 0; page < 64; ++page) {
        const VirtAddr va = base + page * pageSize;
        tlb.fill(va, *system.appSpace().translate(va),
                 system.appPt());
    }
    // Invalidate pages [12, 20): clusters 1 and 2 overlap and die
    // whole; every other cluster survives.
    tlb.invalidateRange(base + 12 * pageSize, base + 20 * pageSize);
    for (unsigned page = 0; page < 64; ++page) {
        const bool inDroppedCluster = page >= 8 && page < 24;
        EXPECT_EQ(tlb.lookup(base + page * pageSize).has_value(),
                  !inDroppedCluster)
            << page;
    }
}

TEST(Invalidate, PwcDropsCoveringEntries)
{
    PageWalkCaches pwc;
    // Level-2 entries cover 2MB each; level-3 covers 1GB.
    pwc.insert(2, 0 * levelSpan(2), 100, 1);
    pwc.insert(2, 1 * levelSpan(2), 101, 2);
    pwc.insert(2, 5 * levelSpan(2), 102, 3);
    pwc.insert(3, 0, 200, 4);

    // One page inside the second 2MB span kills that entry and the
    // covering 1GB entry, nothing else.
    const std::uint64_t dropped = pwc.invalidateRange(
        levelSpan(2) + 3 * pageSize, levelSpan(2) + 4 * pageSize);
    EXPECT_EQ(dropped, 2u);
    EXPECT_EQ(pwc.lookupDeepest(0).level, 2u);
    EXPECT_EQ(pwc.lookupDeepest(levelSpan(2)).level, 0u);
    EXPECT_EQ(pwc.lookupDeepest(5 * levelSpan(2)).level, 2u);
}

// ---------------------------------------------------------------------------
// OS teardown mechanics
// ---------------------------------------------------------------------------

TEST(Teardown, MunmapReturnsFramesAndPtNodes)
{
    SystemConfig config;
    config.machineMemBytes = 256_MiB;
    System system(config);
    const std::uint64_t freeBefore =
        system.machineFrames().freeFrames();
    const std::uint64_t nodesBefore = system.appPt().nodeCount();

    const auto id = system.mmap(8_MiB, "tenant", true);
    const VirtAddr base = system.appSpace().vmas().byId(id)->start;
    for (unsigned page = 0; page < 2'048; ++page)
        system.touch(base + page * pageSize);
    ASSERT_LT(system.machineFrames().freeFrames(), freeBefore);
    ASSERT_GT(system.appPt().nodeCount(), nodesBefore);

    const auto counts = system.munmap(id);
    EXPECT_EQ(counts.start, base);
    EXPECT_EQ(counts.dataPagesFreed, 2'048u);
    EXPECT_GT(counts.ptNodesFreed, 0u);
    // Everything returns: data frames and PT node frames.
    EXPECT_EQ(system.machineFrames().freeFrames(), freeBefore);
    EXPECT_EQ(system.appPt().nodeCount(), nodesBefore);
    EXPECT_EQ(system.appPt().deadNodeCount(), counts.ptNodesFreed);
    EXPECT_EQ(system.appSpace().vmas().find(base), nullptr);
    EXPECT_TRUE(system.machineFrames().checkConsistency());
}

TEST(Teardown, MunmapReleasesAsapRegions)
{
    SystemConfig config;
    config.machineMemBytes = 256_MiB;
    config.asapPlacement = true;
    System system(config);
    const auto id = system.mmap(8_MiB, "tenant", true);
    const VirtAddr base = system.appSpace().vmas().byId(id)->start;
    for (unsigned page = 0; page < 2'048; ++page)
        system.touch(base + page * pageSize);

    const AsapPtAllocator *allocator = system.appAsapAllocator();
    ASSERT_NE(allocator, nullptr);
    const std::uint64_t reservedBefore = allocator->reservedFrames();
    ASSERT_EQ(allocator->regions().size(), 2u);   // PL1 + PL2

    system.munmap(id);
    EXPECT_EQ(allocator->regions().size(), 0u);
    EXPECT_EQ(allocator->regionsReleased(), 2u);
    EXPECT_GT(allocator->releasedFrames(), 0u);
    EXPECT_LT(allocator->reservedFrames(), reservedBefore);
    EXPECT_TRUE(system.machineFrames().checkConsistency());

    // The space is genuinely reusable: a new tenant of the same shape
    // reserves regions again.
    const auto id2 = system.mmap(8_MiB, "tenant2", true);
    EXPECT_EQ(allocator->regions().size(), 2u);
    system.munmap(id2);
}

TEST(Teardown, MadviseFreeRefaultsToFreshMapping)
{
    SystemConfig config;
    config.machineMemBytes = 256_MiB;
    System system(config);
    const auto id = system.mmap(4_MiB, "heap", true);
    const VirtAddr base = system.appSpace().vmas().byId(id)->start;
    for (unsigned page = 0; page < 1'024; ++page)
        system.touch(base + page * pageSize);

    Machine machine(system, MachineConfig{});
    const VirtAddr probe = base + 100 * pageSize;
    const auto before = machine.translate(probe, 0);
    ASSERT_FALSE(before.faulted);

    // OS frees the range; the machine's shootdown must remove the now
    // stale TLB/PWC state, and the next access faults to a (possibly
    // different) frame that matches the functional page table.
    const auto counts = system.madviseFree(base + 64 * pageSize, 128);
    EXPECT_EQ(counts.dataPagesFreed, 128u);
    machine.invalidateRange(counts.start, counts.end);

    const auto after = machine.translate(probe, 1'000);
    EXPECT_TRUE(after.faulted);
    const auto functional = system.appSpace().translate(probe);
    ASSERT_TRUE(functional.has_value());
    EXPECT_EQ(after.translation.pfn, functional->pfn);

    // Pages outside the madvised window kept their mapping.
    const VirtAddr outside = base + 10 * pageSize;
    const auto t = machine.translate(outside, 2'000);
    EXPECT_FALSE(t.faulted);
}

// ---------------------------------------------------------------------------
// Differential: range invalidation vs full flush
// ---------------------------------------------------------------------------

/** Seeds pick (virtualized, clustered, asap) combinations. */
class InvalidateDifferential
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(InvalidateDifferential, FullRangeInvalidateEqualsFlush)
{
    const std::uint64_t seed = GetParam();
    WorkloadSpec spec = tinySpec();
    spec.residentPages = 8'000;
    spec.windowPages = 1'000;

    EnvironmentOptions env;
    env.virtualized = (seed & 1) != 0;
    env.asapPlacement = (seed & 2) != 0;
    System system(makeSystemConfig(spec, env));
    const auto workload = makeWorkload(spec);
    workload->setup(system);

    MachineConfig machineConfig =
        env.asapPlacement ? makeMachineConfig(AsapConfig::p1p2())
                          : MachineConfig{};
    machineConfig.tlb.clusteredL2 = (seed & 4) != 0 && !env.virtualized;
    Machine rangeInv(system, machineConfig);
    Machine flushed(system, machineConfig);

    Rng rng(seed ^ 0xd1f);
    workload->reset(rng);
    std::vector<VirtAddr> vas(6'000);
    for (VirtAddr &va : vas)
        va = workload->next(rng);

    // Phase 1: identical warm-up drives identical machine state.
    Cycles now = 0;
    for (const VirtAddr va : vas) {
        const auto a = rangeInv.translate(va, now);
        const auto b = flushed.translate(va, now);
        ASSERT_EQ(a.translation.pfn, b.translation.pfn);
        now += 10;
    }

    // Whole-address-space range invalidation must behave exactly like
    // the full flush of TLBs + app PWCs.
    rangeInv.invalidateRange(0, ~VirtAddr{0});
    flushed.tlb().flush();
    flushed.appPwc().flush();

    // Phase 2: every subsequent translation agrees in hit level, walk
    // latency and result — the machines are indistinguishable.
    for (const VirtAddr va : vas) {
        const auto a = rangeInv.translate(va, now);
        const auto b = flushed.translate(va, now);
        ASSERT_EQ(static_cast<int>(a.tlbLevel),
                  static_cast<int>(b.tlbLevel));
        ASSERT_EQ(a.walked, b.walked);
        ASSERT_EQ(a.walkLatency, b.walkLatency);
        ASSERT_EQ(a.translation.pfn, b.translation.pfn);
        now += 10;
    }
}

INSTANTIATE_TEST_SUITE_P(Configs, InvalidateDifferential,
                         ::testing::Values(0, 1, 2, 3, 4, 6, 7, 13));

/** Partial-range invalidation never breaks translations: after random
 *  shootdowns, every translate agrees with the functional lookup. */
TEST(InvalidateDifferentialPartial, RandomRangesStayCorrect)
{
    WorkloadSpec spec = tinySpec();
    spec.residentPages = 8'000;
    EnvironmentOptions env;
    env.asapPlacement = true;
    System system(makeSystemConfig(spec, env));
    const auto workload = makeWorkload(spec);
    workload->setup(system);
    Machine machine(system, makeMachineConfig(AsapConfig::p1p2()));

    Rng rng(99);
    workload->reset(rng);
    Cycles now = 0;
    for (int round = 0; round < 40; ++round) {
        for (int i = 0; i < 300; ++i) {
            const VirtAddr va = workload->next(rng);
            const auto result = machine.translate(va, now);
            const auto functional = system.appSpace().translate(va);
            ASSERT_TRUE(functional.has_value());
            ASSERT_EQ(result.translation.pfn, functional->pfn);
            now += 10;
        }
        // Shoot down a random 1-64 page range near the last access.
        const VirtAddr start =
            alignDown(workload->next(rng), pageSize);
        machine.invalidateRange(start,
                                start + (1 + rng.below(64)) * pageSize);
    }
}

// ---------------------------------------------------------------------------
// Zero-event equivalence with the pinned Golden scenarios
// ---------------------------------------------------------------------------

TEST(ZeroEvents, GoldenScenariosBitIdentical)
{
    // A dynamics-wrapped workload whose events all lie beyond the end
    // of the run: the event machinery is active but never fires, and
    // every pinned Golden scenario must come out bit-identical to the
    // plain run (the static path is untouched by construction; this
    // pins the batch-capping logic too).
    for (const golden::Scenario &scenario : golden::goldenScenarios()) {
        SCOPED_TRACE(scenario.name);
        const golden::Expect plain =
            golden::flatten(golden::runScenario(scenario));

        const WorkloadSpec spec = withDynamics(
            golden::goldenSpec(), "server", 1.0,
            /*periodAccesses=*/10'000'000);
        System system(makeSystemConfig(spec, scenario.env));
        const auto workload = makeWorkload(spec);
        workload->setup(system);
        ASSERT_NE(workload->events(), nullptr);
        Machine machine(system, scenario.machine);
        Simulator simulator(system, machine, *workload);
        const RunStats stats =
            simulator.run(golden::goldenRunConfig(scenario.colocation));
        EXPECT_EQ(stats.dyn.events, 0u);
        EXPECT_TRUE(sameStats(plain, golden::flatten(stats)));
    }
}

// ---------------------------------------------------------------------------
// End-to-end churn runs
// ---------------------------------------------------------------------------

TEST(ChurnRun, TenantsProfileExercisesLifecycle)
{
    const WorkloadSpec spec =
        withDynamics(tinySpec(), "tenants", 1.0, 5'000);
    EnvironmentOptions env;
    env.asapPlacement = true;
    System system(makeSystemConfig(spec, env));
    const auto workload = makeWorkload(spec);
    workload->setup(system);
    Machine machine(system, makeMachineConfig(AsapConfig::p1p2()));
    Simulator simulator(system, machine, *workload);
    const RunStats stats = simulator.run(tinyRun());

    // Stats invariants hold under churn.
    EXPECT_EQ(stats.accesses, 80'000u);
    EXPECT_EQ(stats.tlbL1Hits + stats.tlbL2Hits + stats.tlbMisses,
              stats.accesses);
    EXPECT_EQ(stats.totalCycles, stats.computeCycles + stats.dataCycles +
                                     stats.walkCycles);

    // The full lifecycle fired: arrivals, departures, madvise +
    // refault (measured-phase faults), shootdowns, region teardown.
    EXPECT_GT(stats.dyn.events, 0u);
    EXPECT_GT(stats.dyn.mmaps, 0u);
    EXPECT_GT(stats.dyn.munmaps, 0u);
    EXPECT_GT(stats.dyn.madviseFrees, 0u);
    EXPECT_GT(stats.dyn.minorFaults, 0u);
    EXPECT_GT(stats.dyn.dataPagesFreed, 0u);
    EXPECT_GT(stats.dyn.ptNodesFreed, 0u);
    EXPECT_GT(stats.dyn.tlbInvalidated, 0u);
    EXPECT_GT(stats.faults, 0u);
    EXPECT_GT(stats.dyn.regionsReleased, 0u);

    // Determinism: the same churn run twice from fresh state agrees.
    System system2(makeSystemConfig(spec, env));
    const auto workload2 = makeWorkload(spec);
    workload2->setup(system2);
    Machine machine2(system2, makeMachineConfig(AsapConfig::p1p2()));
    Simulator simulator2(system2, machine2, *workload2);
    const RunStats again = simulator2.run(tinyRun());
    EXPECT_TRUE(sameStats(golden::flatten(stats),
                          golden::flatten(again)));
    EXPECT_EQ(stats.dyn.tlbInvalidated, again.dyn.tlbInvalidated);
    EXPECT_EQ(stats.dyn.dataPagesFreed, again.dyn.dataPagesFreed);
}

TEST(ChurnRun, VirtualizedTenantsRun)
{
    // Mid-run tenant VMAs under virtualization + ASAP: guest regions
    // get host backing on arrival, recycled guest frames fall back to
    // demand backing, and the run completes with faults serviced.
    const WorkloadSpec spec =
        withDynamics(tinySpec(), "tenants", 1.0, 5'000);
    EnvironmentOptions env;
    env.virtualized = true;
    env.asapPlacement = true;
    System system(makeSystemConfig(spec, env));
    const auto workload = makeWorkload(spec);
    workload->setup(system);
    Machine machine(system,
                    makeMachineConfig(AsapConfig::p1p2(),
                                      AsapConfig::p1p2()));
    Simulator simulator(system, machine, *workload);
    const RunStats stats = simulator.run(tinyRun());
    EXPECT_GT(stats.dyn.munmaps, 0u);
    EXPECT_GT(stats.dyn.regionsReleased, 0u);
    EXPECT_EQ(stats.tlbL1Hits + stats.tlbL2Hits + stats.tlbMisses,
              stats.accesses);
}

TEST(ChurnRun, SweepPrivatizesDynamicEnvironments)
{
    // Two cells with identical spec + env options but different labels:
    // were they to share one Environment (the static grouping rule),
    // the second would run against the System the first churned —
    // different faults, different placement. The runner must give each
    // mutating cell a private Environment, making them identical.
    const WorkloadSpec spec =
        withDynamics(tinySpec(), "tenants", 1.0, 5'000);
    exp::SweepSpec sweep("dyn_privatize");
    RunConfig run = tinyRun();
    EnvironmentOptions env;
    sweep.add(spec, env, MachineConfig{}, run, "r", "first");
    sweep.add(spec, env, MachineConfig{}, run, "r", "second");
    const exp::ResultSet results = exp::SweepRunner(2).run(sweep);
    const RunStats &a = results.stats("r", "first");
    const RunStats &b = results.stats("r", "second");
    EXPECT_TRUE(sameStats(golden::flatten(a), golden::flatten(b)));
    EXPECT_EQ(a.faults, b.faults);
    EXPECT_EQ(a.dyn.dataPagesFreed, b.dyn.dataPagesFreed);
    EXPECT_EQ(a.dyn.tlbInvalidated, b.dyn.tlbInvalidated);
}

// ---------------------------------------------------------------------------
// Record -> replay of dynamic runs
// ---------------------------------------------------------------------------

TEST(DynTrace, RecordReplayBitIdentical)
{
    const WorkloadSpec spec =
        withDynamics(tinySpec(), "tenants", 1.0, 5'000);
    const RunConfig run = tinyRun();
    EnvironmentOptions env;
    env.asapPlacement = true;

    RunStats live;
    {
        System system(makeSystemConfig(spec, env));
        const auto workload = makeWorkload(spec);
        workload->setup(system);
        Machine machine(system, makeMachineConfig(AsapConfig::p1p2()));
        Simulator simulator(system, machine, *workload);
        live = simulator.run(run);
    }

    const std::string path = "dyn_roundtrip.trc2";
    RecordOptions options;
    options.version = trc2Version;
    recordTrace(spec, path, run.seed,
                run.warmupAccesses + run.measureAccesses, options);

    {
        TraceFile trace(path);
        EXPECT_TRUE(trace.hasEventOps());
    }

    RunStats replayed;
    {
        System system(makeSystemConfig(spec, env));
        TraceReplayWorkload replay(path);
        ASSERT_NE(replay.events(), nullptr);
        replay.setup(system);
        Machine machine(system, makeMachineConfig(AsapConfig::p1p2()));
        Simulator simulator(system, machine, replay);
        replayed = simulator.run(run);
    }
    EXPECT_TRUE(sameStats(golden::flatten(live),
                          golden::flatten(replayed)));
    EXPECT_EQ(live.dyn.events, replayed.dyn.events);
    EXPECT_EQ(live.dyn.munmaps, replayed.dyn.munmaps);
    EXPECT_EQ(live.dyn.dataPagesFreed, replayed.dyn.dataPagesFreed);
    EXPECT_EQ(live.dyn.tlbInvalidated, replayed.dyn.tlbInvalidated);
    EXPECT_EQ(live.dyn.pwcInvalidated, replayed.dyn.pwcInvalidated);

    // Re-containering (rechunk + compress) preserves the event stream
    // and hence the replayed RunStats, bit for bit.
    const std::string rechunked = "dyn_roundtrip_b.trc2";
    Trc2Options v2;
    v2.chunkAccesses = 4'096;
    convertToV2(path, rechunked, v2);
    RunStats reconverted;
    {
        System system(makeSystemConfig(spec, env));
        TraceReplayWorkload replay(rechunked);
        ASSERT_NE(replay.events(), nullptr);
        replay.setup(system);
        Machine machine(system, makeMachineConfig(AsapConfig::p1p2()));
        Simulator simulator(system, machine, replay);
        reconverted = simulator.run(run);
    }
    EXPECT_TRUE(sameStats(golden::flatten(live),
                          golden::flatten(reconverted)));
    EXPECT_EQ(live.dyn.events, reconverted.dyn.events);

    std::remove(path.c_str());
    std::remove(rechunked.c_str());
}

TEST(DynTrace, StaticV2TraceHasNoEventOps)
{
    const std::string path = "dyn_static.trc2";
    RecordOptions options;
    options.version = trc2Version;
    recordTrace(tinySpec(), path, 7, 50'000, options);
    TraceFile trace(path);
    EXPECT_FALSE(trace.hasEventOps());
    TraceReplayWorkload replay(path);
    EXPECT_EQ(replay.events(), nullptr);
    std::remove(path.c_str());
}

TEST(DynTrace, RecordingDynamicWorkloadToV1Fatals)
{
    const WorkloadSpec spec =
        withDynamics(tinySpec(), "server", 1.0, 5'000);
    testutil::expectStatusError(
        [&] { recordTrace(spec, "dyn_v1.trc1", 7, 50'000); },
        StatusCode::InvalidArgument, "ASAPTRC2");
}
