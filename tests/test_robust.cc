/**
 * @file
 * Resilient-execution-layer tests: the Status error model, recoverable
 * corrupt-input loading through the library boundaries, deterministic
 * fault injection, fault-isolated sweeps (error cells, retry,
 * timeout), journal round-trips with checkpoint/resume byte-identity,
 * and a regression replay of the fuzz seed corpus through the real
 * fuzzer entry points.
 *
 * Sweep tests pin SweepRunner(1): fault-injection hit counters are
 * process-wide, so single-threaded execution is what makes "the first
 * N probe hits" land on a known cell.
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_inject.hh"
#include "common/status.hh"
#include "exp/journal.hh"
#include "exp/sweep.hh"
#include "expect_status.hh"
#include "trace/convert.hh"
#include "trace/fuzz_entry.hh"
#include "trace/trace_file.hh"
#include "workloads/suite.hh"
#include "workloads/trace.hh"

using namespace asap;

namespace
{

/** Set an environment variable for one scope, restoring on exit. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        if (const char *old = std::getenv(name))
            old_ = old;
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }

    ~ScopedEnv()
    {
        if (old_.has_value())
            ::setenv(name_.c_str(), old_->c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    std::optional<std::string> old_;
};

/** Disarm fault injection when a test scope ends, pass or fail. */
struct FaultGuard
{
    ~FaultGuard() { fault::reconfigure(nullptr); }
};

/** RAII temp directory under the test working directory. */
class TempDir
{
  public:
    explicit TempDir(std::string path) : path_(std::move(path))
    {
        std::filesystem::remove_all(path_);
        std::filesystem::create_directories(path_);
    }
    ~TempDir() { std::filesystem::remove_all(path_); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** Small, fast generator spec for sweep-level tests. */
WorkloadSpec
tinySpec(const char *name = "robusttiny")
{
    WorkloadSpec spec;
    spec.name = name;
    spec.paperGb = 0.5;
    spec.residentPages = 3'000;
    spec.dataVmas = 2;
    spec.smallVmas = 3;
    spec.cyclesPerAccess = 4;
    spec.windowFraction = 0.5;
    spec.windowPages = 300;
    spec.nearFraction = 0.1;
    spec.seqFraction = 0.1;
    spec.linesPerPage = 2;
    spec.burstContinueProb = 0.5;
    spec.machineMemBytes = 256_MiB;
    spec.guestMemBytes = 64_MiB;
    spec.churnOps = 1'000;
    spec.churnMaxOrder = 2;
    return spec;
}

RunConfig
tinyRun()
{
    RunConfig run;
    run.warmupAccesses = 2'000;
    run.measureAccesses = 10'000;
    run.seed = 7;
    return run;
}

std::string
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    return bytes;
}

void
writeAll(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

} // namespace

// ---------------------------------------------------------------------------
// Status / StatusOr
// ---------------------------------------------------------------------------

TEST(Status, CodesMessagesAndTransience)
{
    EXPECT_TRUE(Status::okStatus().ok());
    EXPECT_EQ(Status::okStatus().toString(), "OK");

    const Status corrupt = Status::dataLoss("bad magic");
    EXPECT_FALSE(corrupt.ok());
    EXPECT_EQ(corrupt.code(), StatusCode::DataLoss);
    EXPECT_EQ(corrupt.message(), "bad magic");
    EXPECT_EQ(corrupt.toString(), "DATA_LOSS: bad magic");
    EXPECT_FALSE(corrupt.transient());

    // Exactly the retryable triple.
    EXPECT_TRUE(Status::unavailable("io flake").transient());
    EXPECT_TRUE(Status::resourceExhausted("oom").transient());
    EXPECT_TRUE(Status::deadlineExceeded("slow").transient());
    EXPECT_FALSE(Status::invalidArgument("bad").transient());
    EXPECT_FALSE(Status::notFound("missing").transient());
    EXPECT_FALSE(Status::cancelled("stop").transient());
    EXPECT_FALSE(Status::internal("bug").transient());

    EXPECT_EQ(corrupt, Status::dataLoss("bad magic"));
    EXPECT_NE(corrupt, Status::dataLoss("other"));
}

TEST(Status, StatusOrValueAndError)
{
    StatusOr<int> good(42);
    ASSERT_TRUE(good.ok());
    EXPECT_EQ(good.value(), 42);
    EXPECT_EQ(*good, 42);
    EXPECT_EQ(std::move(good).valueOrThrow(), 42);

    StatusOr<int> bad(Status::notFound("no such"));
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), StatusCode::NotFound);
    testutil::expectStatusError(
        [&] { std::move(bad).valueOrThrow(); }, StatusCode::NotFound,
        "no such");
}

TEST(Status, RunToStatusFunnel)
{
    EXPECT_TRUE(runToStatus([] {}).ok());

    const Status fromError = runToStatus(
        [] { throwStatus(Status::dataLoss("torn bytes")); });
    EXPECT_EQ(fromError.code(), StatusCode::DataLoss);
    EXPECT_EQ(fromError.message(), "torn bytes");

    const Status fromOom = runToStatus([] { throw std::bad_alloc(); });
    EXPECT_EQ(fromOom.code(), StatusCode::ResourceExhausted);

    const Status fromOther =
        runToStatus([] { throw std::runtime_error("surprise"); });
    EXPECT_EQ(fromOther.code(), StatusCode::Internal);
    EXPECT_EQ(fromOther.message(), "surprise");
}

// ---------------------------------------------------------------------------
// Corrupt input comes back as an error Status through the library API
// ---------------------------------------------------------------------------

TEST(RobustInput, CorruptTraceLoadsAsErrorStatus)
{
    const std::string path = "robust_corrupt.asaptrace";
    writeAll(path, "this is not a trace container at all");

    const auto opened = TraceFile::open(path);
    ASSERT_FALSE(opened.ok());
    EXPECT_EQ(opened.status().code(), StatusCode::DataLoss);
    EXPECT_NE(opened.status().message().find(path), std::string::npos)
        << opened.status().message();

    Trc2Summary summary;
    const Status converted =
        tryConvertToV2(path, "robust_corrupt_out.trc2", summary);
    EXPECT_FALSE(converted.ok());
    EXPECT_EQ(converted.code(), StatusCode::DataLoss);

    std::remove(path.c_str());
    std::remove("robust_corrupt_out.trc2");
}

TEST(RobustInput, MissingTraceLoadsAsErrorStatus)
{
    const auto opened = TraceFile::open("robust_definitely_missing.trc");
    ASSERT_FALSE(opened.ok());
    // The open failure names the path and the OS reason (strerror).
    EXPECT_NE(opened.status().message().find(
                  "robust_definitely_missing.trc"),
              std::string::npos);
}

TEST(RobustInput, TruncatedTraceLoadsAsErrorStatus)
{
    const std::string valid = "robust_truncated_src.asaptrace";
    recordTrace(tinySpec(), valid, 7, 200);
    const std::string bytes = readAll(valid);
    ASSERT_GT(bytes.size(), 40u);

    const std::string cut = "robust_truncated.asaptrace";
    writeAll(cut, bytes.substr(0, bytes.size() / 2));
    const auto opened = TraceFile::open(cut);
    EXPECT_FALSE(opened.ok());
    EXPECT_EQ(opened.status().code(), StatusCode::DataLoss);

    std::remove(valid.c_str());
    std::remove(cut.c_str());
}

// ---------------------------------------------------------------------------
// Deterministic fault injection
// ---------------------------------------------------------------------------

TEST(FaultInject, RulesCountAndFire)
{
    FaultGuard guard;
    fault::reconfigure("probe:2:2");
    EXPECT_TRUE(fault::armed());

    EXPECT_FALSE(fault::shouldFail("probe"));   // hit 1
    EXPECT_TRUE(fault::shouldFail("probe"));    // hit 2: fails
    EXPECT_TRUE(fault::shouldFail("probe"));    // hit 3: fails (count 2)
    EXPECT_FALSE(fault::shouldFail("probe"));   // hit 4
    EXPECT_EQ(fault::hitCount("probe"), 4u);
    EXPECT_EQ(fault::hitCount("othersite"), 0u);

    fault::reconfigure("a:1,b:3");
    EXPECT_EQ(fault::hitCount("probe"), 0u);    // counters reset
    EXPECT_TRUE(fault::shouldFail("a"));
    EXPECT_FALSE(fault::shouldFail("b"));
    EXPECT_FALSE(fault::shouldFail("b"));
    EXPECT_TRUE(fault::shouldFail("b"));

    fault::reconfigure(nullptr);
    EXPECT_FALSE(fault::armed());
    EXPECT_FALSE(fault::shouldFail("a"));
}

TEST(FaultInject, ProbesThrowTheRightShapes)
{
    FaultGuard guard;
    fault::reconfigure("flaky:1");
    testutil::expectStatusError([] { fault::maybeFail("flaky"); },
                                StatusCode::Unavailable, "flaky");
    fault::maybeFail("flaky");   // hit 2: no throw

    fault::reconfigure("alloc:1");
    EXPECT_THROW(fault::maybeOom("alloc"), std::bad_alloc);
    fault::maybeOom("alloc");    // hit 2: no throw
}

TEST(FaultInject, FileReadFaultSurfacesAsUnavailable)
{
    FaultGuard guard;
    const std::string path = "robust_fault_read.asaptrace";
    recordTrace(tinySpec(), path, 7, 200);

    fault::reconfigure("file-open:1");
    const auto opened = TraceFile::open(path);
    ASSERT_FALSE(opened.ok());
    EXPECT_EQ(opened.status().code(), StatusCode::Unavailable);
    EXPECT_TRUE(opened.status().transient());

    // The same open succeeds once the injected fault has fired.
    fault::reconfigure(nullptr);
    EXPECT_TRUE(TraceFile::open(path).ok());
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Fault-isolated sweeps
// ---------------------------------------------------------------------------

TEST(RobustSweep, ErrorCellLeavesSiblingsStanding)
{
    FaultGuard guard;
    ScopedEnv retries("ASAP_CELL_RETRIES", "2");   // 3 attempts
    ScopedEnv timeout("ASAP_CELL_TIMEOUT", nullptr);
    ScopedEnv resume("ASAP_RESUME", nullptr);
    ScopedEnv baseMs("ASAP_RETRY_BASE_MS", "1");
    TempDir dir("robust_results_errcell");
    ScopedEnv results("ASAP_RESULTS_DIR", dir.path().c_str());

    exp::SweepSpec sweep("robust_errcell");
    sweep.add(tinySpec(), {}, MachineConfig{}, tinyRun(), "r", "doomed");
    sweep.add(tinySpec(), {}, MachineConfig{}, tinyRun(), "r", "fine");

    // Both cells share one group (same spec+env), so with one worker
    // the first three "cell" probe hits are exactly the doomed cell's
    // three attempts; the fourth is the sibling's first.
    fault::reconfigure("cell:1:3");
    const exp::ResultSet out = exp::SweepRunner(1).run(sweep);

    const exp::CellResult &doomed = out.cell("r", "doomed");
    EXPECT_FALSE(doomed.status.ok());
    EXPECT_EQ(doomed.status.code(), StatusCode::Unavailable);
    EXPECT_EQ(doomed.attempts, 3u);
    EXPECT_FALSE(doomed.measured);

    const exp::CellResult &fine = out.cell("r", "fine");
    EXPECT_TRUE(fine.status.ok());
    EXPECT_TRUE(fine.measured);
    EXPECT_EQ(fine.attempts, 1u);
    EXPECT_GT(fine.stats.accesses, 0u);

    // Artifacts carry the failure as data, not as a crash.
    const std::string csv = out.toCsv();
    EXPECT_NE(csv.find("row,column,measured,status"), std::string::npos);
    EXPECT_NE(csv.find("r,doomed,0,UNAVAILABLE"), std::string::npos);
    EXPECT_NE(csv.find("r,fine,1,OK"), std::string::npos);
}

TEST(RobustSweep, InjectedOomBecomesResourceExhaustedCell)
{
    FaultGuard guard;
    ScopedEnv retries("ASAP_CELL_RETRIES", "0");   // single attempt
    ScopedEnv timeout("ASAP_CELL_TIMEOUT", nullptr);
    ScopedEnv resume("ASAP_RESUME", nullptr);
    TempDir dir("robust_results_oomcell");
    ScopedEnv results("ASAP_RESULTS_DIR", dir.path().c_str());

    // Two groups: the OOM is injected into whichever Environment is
    // built first; with one worker that is the first group in key
    // order. Assert the *shape* — exactly one RESOURCE_EXHAUSTED error
    // cell, and the other cell measured — not which one.
    WorkloadSpec other = tinySpec("robustother");
    other.residentPages = 2'000;

    exp::SweepSpec sweep("robust_oomcell");
    sweep.add(tinySpec(), {}, MachineConfig{}, tinyRun(), "r", "a");
    sweep.add(other, {}, MachineConfig{}, tinyRun(), "r", "b");

    fault::reconfigure("env-alloc:1");
    const exp::ResultSet out = exp::SweepRunner(1).run(sweep);

    unsigned failed = 0, measured = 0;
    for (const exp::CellResult &cell : out.cells()) {
        if (cell.status.ok()) {
            EXPECT_TRUE(cell.measured);
            ++measured;
        } else {
            EXPECT_EQ(cell.status.code(),
                      StatusCode::ResourceExhausted);
            ++failed;
        }
    }
    EXPECT_EQ(failed, 1u);
    EXPECT_EQ(measured, 1u);
}

TEST(RobustSweep, CorruptTraceAndOomCellsCompleteSiblings)
{
    FaultGuard guard;
    ScopedEnv retries("ASAP_CELL_RETRIES", "0");
    ScopedEnv timeout("ASAP_CELL_TIMEOUT", nullptr);
    ScopedEnv resume("ASAP_RESUME", nullptr);
    TempDir dir("robust_results_mixed");
    ScopedEnv results("ASAP_RESULTS_DIR", dir.path().c_str());

    const std::string corruptPath = "robust_mixed_corrupt.asaptrace";
    writeAll(corruptPath, "ASAPTRC?not really a trace container");
    WorkloadSpec corrupt = tinySpec("aaa_corrupt");
    corrupt.tracePath = corruptPath;

    WorkloadSpec healthy = tinySpec("mmm_healthy");
    WorkloadSpec oomed = tinySpec("zzz_oomed");
    oomed.residentPages = 2'000;

    exp::SweepSpec sweep("robust_mixed");
    sweep.add(corrupt, {}, MachineConfig{}, tinyRun(), "r", "corrupt");
    sweep.add(healthy, {}, MachineConfig{}, tinyRun(), "r", "healthy");
    sweep.add(oomed, {}, MachineConfig{}, tinyRun(), "r", "oomed");

    // With one worker, groups execute in environment-key order, which
    // the aaa/mmm/zzz spec names pin: the env-alloc probe's third hit
    // is the oomed cell's Environment construction.
    fault::reconfigure("env-alloc:3");
    const exp::ResultSet out = exp::SweepRunner(1).run(sweep);

    EXPECT_EQ(out.cell("r", "corrupt").status.code(),
              StatusCode::DataLoss);
    EXPECT_FALSE(out.cell("r", "corrupt").measured);
    EXPECT_EQ(out.cell("r", "oomed").status.code(),
              StatusCode::ResourceExhausted);
    EXPECT_TRUE(out.cell("r", "healthy").status.ok());
    EXPECT_TRUE(out.cell("r", "healthy").measured);

    std::remove(corruptPath.c_str());
}

TEST(RobustSweep, TransientFaultRetriesThenMatchesCleanRun)
{
    FaultGuard guard;
    ScopedEnv retries("ASAP_CELL_RETRIES", "2");
    ScopedEnv baseMs("ASAP_RETRY_BASE_MS", "1");
    ScopedEnv timeout("ASAP_CELL_TIMEOUT", nullptr);
    ScopedEnv resume("ASAP_RESUME", nullptr);
    TempDir dir("robust_results_retry");
    ScopedEnv results("ASAP_RESULTS_DIR", dir.path().c_str());

    exp::SweepSpec sweep("robust_retry");
    sweep.add(tinySpec(), {}, MachineConfig{}, tinyRun(), "r", "c");

    fault::reconfigure("cell:1");   // first attempt only
    const exp::ResultSet faulted = exp::SweepRunner(1).run(sweep);
    EXPECT_TRUE(faulted.cell("r", "c").status.ok());
    EXPECT_EQ(faulted.cell("r", "c").attempts, 2u);

    fault::reconfigure(nullptr);
    const exp::ResultSet clean = exp::SweepRunner(1).run(sweep);
    EXPECT_EQ(clean.cell("r", "c").attempts, 1u);

    // A retried cell runs on a rebuilt Environment, so its measured
    // results are bit-identical to a run that never faulted (the JSON
    // artifact legitimately differs in its "attempts" field).
    EXPECT_EQ(faulted.toCsv(), clean.toCsv());
}

TEST(RobustSweep, HungCellTimesOutAndSiblingCompletes)
{
    FaultGuard guard;
    ScopedEnv retries("ASAP_CELL_RETRIES", "0");
    ScopedEnv timeout("ASAP_CELL_TIMEOUT", "1");
    ScopedEnv resume("ASAP_RESUME", nullptr);
    TempDir dir("robust_results_timeout");
    ScopedEnv results("ASAP_RESULTS_DIR", dir.path().c_str());

    exp::SweepSpec sweep("robust_timeout");
    sweep.add(tinySpec(), {}, MachineConfig{}, tinyRun(), "r", "hung");
    sweep.add(tinySpec(), {}, MachineConfig{}, tinyRun(), "r", "fine");

    fault::reconfigure("cell-hang:1");
    const exp::ResultSet out = exp::SweepRunner(1).run(sweep);

    const exp::CellResult &hung = out.cell("r", "hung");
    EXPECT_FALSE(hung.status.ok());
    EXPECT_EQ(hung.status.code(), StatusCode::DeadlineExceeded);
    EXPECT_NE(hung.status.message().find("ASAP_CELL_TIMEOUT"),
              std::string::npos);

    const exp::CellResult &fine = out.cell("r", "fine");
    EXPECT_TRUE(fine.status.ok());
    EXPECT_TRUE(fine.measured);
}

// ---------------------------------------------------------------------------
// Journal round-trip and checkpoint/resume
// ---------------------------------------------------------------------------

TEST(Journal, CellResultRoundTrips)
{
    exp::CellResult error;
    error.row = "r";
    error.column = "broken";
    error.status = Status::dataLoss("chunk 3 is torn");
    error.attempts = 3;

    exp::CellResult back;
    ASSERT_TRUE(
        exp::cellResultFromJson(exp::cellResultToJson(error), back));
    EXPECT_EQ(back.row, "r");
    EXPECT_EQ(back.column, "broken");
    EXPECT_FALSE(back.measured);
    EXPECT_EQ(back.status, error.status);
    EXPECT_EQ(back.attempts, 3u);

    // u64 fidelity: values past 2^53 must survive (they are encoded as
    // decimal strings precisely because JSON numbers are doubles).
    exp::CellResult big;
    big.row = "r";
    big.column = "big";
    big.measured = true;
    big.attempts = 1;
    big.stats.accesses = (1ull << 60) + 12345;
    big.stats.totalCycles = UINT64_MAX - 7;
    big.extra["vmas"] = 42.0;

    exp::CellResult bigBack;
    ASSERT_TRUE(
        exp::cellResultFromJson(exp::cellResultToJson(big), bigBack));
    EXPECT_EQ(bigBack.stats.accesses, (1ull << 60) + 12345);
    EXPECT_EQ(bigBack.stats.totalCycles, UINT64_MAX - 7);
    EXPECT_EQ(bigBack.extra.at("vmas"), 42.0);

    exp::Json junk = exp::Json::object();
    junk.set("row", 3.0);   // wrong type
    exp::CellResult untouched;
    EXPECT_FALSE(exp::cellResultFromJson(junk, untouched));
}

TEST(Journal, ResumeReproducesArtifactsByteForByte)
{
    FaultGuard guard;
    ScopedEnv retries("ASAP_CELL_RETRIES", "0");
    ScopedEnv timeout("ASAP_CELL_TIMEOUT", nullptr);
    TempDir dir("robust_results_resume");
    ScopedEnv results("ASAP_RESULTS_DIR", dir.path().c_str());

    WorkloadSpec other = tinySpec("robustother");
    other.residentPages = 2'000;

    exp::SweepSpec sweep("robust_resume");
    sweep.add(tinySpec(), {}, MachineConfig{}, tinyRun(), "r", "a");
    sweep.add(tinySpec(), {}, MachineConfig{}, tinyRun(), "r", "b");
    sweep.add(other, {}, MachineConfig{}, tinyRun(), "s", "a");

    // Reference: a clean uninterrupted run (journal fully written).
    std::string csvRef, jsonRef;
    {
        ScopedEnv resume("ASAP_RESUME", nullptr);
        const exp::ResultSet ref = exp::SweepRunner(1).run(sweep);
        csvRef = ref.toCsv();
        jsonRef = ref.toJson().dump(2);
        for (const exp::CellResult &cell : ref.cells())
            EXPECT_FALSE(cell.resumed);
    }

    const std::string journalPath =
        exp::CellJournal::pathFor("robust_resume");
    ASSERT_TRUE(std::filesystem::exists(journalPath));
    // A completed sweep seals its journal into cell-index order, so
    // the on-disk journal itself is part of the deterministic-output
    // contract from here on.
    const std::string journalRef = readAll(journalPath);

    // Simulate a crash before the last journal append: drop the final
    // record line. The torn group recomputes; the others restore.
    {
        std::string journal = readAll(journalPath);
        ASSERT_FALSE(journal.empty());
        const auto lastNewline =
            journal.find_last_of('\n', journal.size() - 2);
        ASSERT_NE(lastNewline, std::string::npos);
        writeAll(journalPath, journal.substr(0, lastNewline + 1));
    }
    {
        ScopedEnv resume("ASAP_RESUME", "1");
        const exp::ResultSet out = exp::SweepRunner(1).run(sweep);
        EXPECT_EQ(out.toCsv(), csvRef);
        EXPECT_EQ(out.toJson().dump(2), jsonRef);
        unsigned resumed = 0, recomputed = 0;
        for (const exp::CellResult &cell : out.cells())
            (cell.resumed ? resumed : recomputed) += 1;
        EXPECT_GE(resumed, 1u);
        EXPECT_GE(recomputed, 1u);
    }
    // The resumed run completed, so its re-sealed journal must match
    // the uninterrupted run's byte for byte.
    EXPECT_EQ(readAll(journalPath), journalRef);

    // The resumed run rewrote the missing record; a second resume
    // restores every cell without executing anything.
    {
        ScopedEnv resume("ASAP_RESUME", "1");
        const exp::ResultSet out = exp::SweepRunner(1).run(sweep);
        EXPECT_EQ(out.toCsv(), csvRef);
        EXPECT_EQ(out.toJson().dump(2), jsonRef);
        for (const exp::CellResult &cell : out.cells())
            EXPECT_TRUE(cell.resumed);
    }
}

TEST(Journal, MismatchedJournalIsIgnored)
{
    ScopedEnv retries("ASAP_CELL_RETRIES", "0");
    TempDir dir("robust_results_mismatch");
    ScopedEnv results("ASAP_RESULTS_DIR", dir.path().c_str());

    exp::SweepSpec sweep("robust_mismatch");
    sweep.add(tinySpec(), {}, MachineConfig{}, tinyRun(), "r", "a");
    {
        ScopedEnv resume("ASAP_RESUME", nullptr);
        exp::SweepRunner(1).run(sweep);
    }

    // A sweep with the same name but a different shape must not adopt
    // the stale records (header cell count differs).
    exp::SweepSpec reshaped("robust_mismatch");
    reshaped.add(tinySpec(), {}, MachineConfig{}, tinyRun(), "r", "a");
    reshaped.add(tinySpec(), {}, MachineConfig{}, tinyRun(), "r", "b");
    {
        ScopedEnv resume("ASAP_RESUME", "1");
        const exp::ResultSet out = exp::SweepRunner(1).run(reshaped);
        for (const exp::CellResult &cell : out.cells()) {
            EXPECT_FALSE(cell.resumed);
            EXPECT_TRUE(cell.status.ok());
        }
    }
}

// ---------------------------------------------------------------------------
// Fuzz-entry regression replay over the checked-in seed corpus
// ---------------------------------------------------------------------------

namespace
{

std::vector<std::string>
corpusFiles(const std::string &subdir)
{
    const std::string dir =
        std::string(ASAP_SOURCE_DIR) + "/fuzz/corpus/" + subdir;
    std::vector<std::string> paths;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        if (entry.is_regular_file())
            paths.push_back(entry.path().string());
    }
    std::sort(paths.begin(), paths.end());
    return paths;
}

/** Replay @p bytes and truncated/flipped variants through @p entry:
 *  the "never crashes, never aborts" contract under gtest instead of
 *  libFuzzer. */
void
replayWithMutations(void (*entry)(const std::uint8_t *, std::size_t),
                    const std::string &bytes)
{
    const auto *data =
        reinterpret_cast<const std::uint8_t *>(bytes.data());
    entry(data, bytes.size());
    for (const std::size_t cut :
         {bytes.size() / 2, bytes.size() / 3, std::size_t{7},
          std::size_t{1}, std::size_t{0}})
        entry(data, std::min(cut, bytes.size()));
    // Deterministic single-byte corruptions sprinkled over the file.
    std::string mutated = bytes;
    for (std::size_t i = 0; i < mutated.size(); i += 11)
        mutated[i] = static_cast<char>(mutated[i] ^ 0x5a);
    entry(reinterpret_cast<const std::uint8_t *>(mutated.data()),
          mutated.size());
}

} // namespace

TEST(FuzzCorpus, TraceFileSeedsReplayClean)
{
    const auto paths = corpusFiles("trace_file");
    ASSERT_GE(paths.size(), 4u) << "seed corpus missing; run "
                                   "make_fuzz_corpus";
    for (const std::string &path : paths) {
        SCOPED_TRACE(path);
        replayWithMutations(fuzzTraceFileOneInput, readAll(path));
    }
}

TEST(FuzzCorpus, ImporterSeedsReplayClean)
{
    const auto paths = corpusFiles("importers");
    ASSERT_GE(paths.size(), 4u) << "seed corpus missing; run "
                                   "make_fuzz_corpus";
    for (const std::string &path : paths) {
        SCOPED_TRACE(path);
        replayWithMutations(fuzzImportersOneInput, readAll(path));
    }
}
