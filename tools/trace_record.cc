/**
 * @file
 * Capture a workload to a binary trace file (see src/workloads/trace.hh
 * for the format). The trace then runs anywhere a workload name does:
 *
 *   trace_record mcf mcf.asaptrace --accesses 750000
 *   perf_hotpath --trace mcf.asaptrace
 *   ... specByName("trace:mcf.asaptrace") in any sweep ...
 *
 * The recorded stream is exactly what Simulator::run would draw from
 * the generator with the same seed, so a replay over the same access
 * count reproduces the live run's RunStats bit-for-bit. The default
 * container is ASAPTRC1; --v2 records the chunked (and compressed)
 * ASAPTRC2 directly — equivalent to piping through trace_convert.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <sys/stat.h>

#include "common/status.hh"
#include "sim/environment.hh"
#include "workloads/suite.hh"
#include "workloads/trace.hh"

using namespace asap;

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s <workload> <out.asaptrace> [options]\n"
        "\n"
        "  <workload>      a suite workload name (mcf, canneal, bfs,\n"
        "                  pagerank, mc80, mc400, redis), optionally\n"
        "                  with an OS-dynamics profile (mcf@tenants,\n"
        "                  mc80@server — requires --v2)\n"
        "  --seed N        stream seed (default 7, the RunConfig default)\n"
        "  --accesses N    addresses to record (default: the default\n"
        "                  RunConfig's warmup+measure count)\n"
        "  --scale N       record the workload scaled down by N\n"
        "                  (suite.cc scaledDown; 1 = full size)\n"
        "  --quick         CI mode: the standard quick-mode workload\n"
        "                  scaling (exactly what ASAP_QUICK=1 applies,\n"
        "                  never both) and the quick-run access count\n"
        "                  (150k, the perf_hotpath --quick run length)\n"
        "  --v2            write the chunked ASAPTRC2 container\n"
        "\n"
        "ASAP_QUICK=1 applies the standard quick-mode scaling, matching\n"
        "what an Environment would run (and shrinking the default\n"
        "access count the same way).\n",
        argv0);
    return 2;
}

/** The real tool; main() below maps StatusError to exit(1). */
int
run(int argc, char **argv)
{
    if (argc < 3)
        return usage(argv[0]);
    const std::string name = argv[1];
    const std::string path = argv[2];
    std::uint64_t seed = 7;
    std::uint64_t accesses = 0;
    unsigned scale = 1;
    bool quick = false;
    RecordOptions record;
    for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
            seed = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--accesses") == 0 &&
                   i + 1 < argc) {
            accesses = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
            scale = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--v2") == 0) {
            record.version = trc2Version;
        } else {
            return usage(argv[0]);
        }
    }

    const auto spec = specByName(name);
    if (!spec) {
        std::fprintf(stderr, "trace_record: unknown workload '%s'\n",
                     name.c_str());
        return 2;
    }
    if (!spec->tracePath.empty()) {
        std::fprintf(stderr,
                     "trace_record: '%s' is already a trace\n",
                     name.c_str());
        return 2;
    }
    // Match what a quick-mode Environment would simulate: one
    // application of the standard scaling, whether requested by flag
    // or by ASAP_QUICK (never stacked), plus any explicit --scale.
    const WorkloadSpec shrunk =
        quick ? scaledDown(*spec, quickScaleDivisor)
              : applyQuickMode(*spec);
    const WorkloadSpec recorded = scaledDown(shrunk, scale);
    if (accesses == 0) {
        if (quick) {
            // The perf_hotpath --quick run length.
            accesses = quickWarmupAccesses + quickMeasureAccesses;
        } else {
            const RunConfig run = defaultRunConfig();
            accesses = run.warmupAccesses + run.measureAccesses;
        }
    }

    recordTrace(recorded, path, seed, accesses, record);

    struct stat st;
    const std::uint64_t fileBytes =
        ::stat(path.c_str(), &st) == 0
            ? static_cast<std::uint64_t>(st.st_size)
            : 0;
    const WorkloadSpec check = traceSpec(path);
    std::printf("%s: recorded %llu accesses of %s (seed %llu, "
                "%llu resident pages)\n"
                "%s: %llu bytes, %.2f bytes/access\n",
                path.c_str(),
                static_cast<unsigned long long>(accesses),
                check.name.c_str(),
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(check.residentPages),
                path.c_str(),
                static_cast<unsigned long long>(fileBytes),
                static_cast<double>(fileBytes) /
                    static_cast<double>(accesses));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Recording/writing errors are recoverable StatusErrors in the
    // library; a CLI turns them back into the classic exit(1) UX.
    try {
        return run(argc, argv);
    } catch (const StatusError &error) {
        std::fprintf(stderr, "trace_record: %s\n", error.what());
        return 1;
    }
}
