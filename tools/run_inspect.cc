/**
 * @file
 * Run one (workload, environment) cell with the walk-event trace sink
 * attached and export what happened:
 *
 *   run_inspect --spec mcf@tenants --env virt_2d_asap \
 *       --events trace.json --summary
 *
 * --events writes Chrome trace-event JSON (load in Perfetto or
 * chrome://tracing; simulated cycles render as microseconds, one
 * "thread" per machine dimension). --summary prints per-kind event
 * counts plus the run's headline statistics and latency percentiles.
 *
 * --timeline[=N] attaches an obs::Timeline sampling every N measured
 * accesses (default: measure/32) and merges its Perfetto *counter
 * tracks* (interval percentiles, occupancy gauges, per-epoch counter
 * deltas) into the --events document — spans and drift curves on one
 * timebase. --timeline-out writes the epoch table itself (JSONL, or
 * CSV when the path ends in .csv); a write failure is reported but
 * never kills the run (recoverable io_error).
 *
 * The workload spec is anything specByName accepts (suite names,
 * name@dynprofile, trace:path); the environment is a named preset over
 * the same EnvironmentOptions/MachineConfig plumbing the sweeps use.
 * ASAP_QUICK=1 applies the standard quick-mode scaling.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hh"
#include "mc/multicore.hh"
#include "obs/timeline.hh"
#include "obs/trace_sink.hh"
#include "sim/environment.hh"
#include "workloads/suite.hh"
#include "workloads/synthetic.hh"

using namespace asap;

namespace
{

struct EnvPreset
{
    const char *name;
    const char *blurb;
    EnvironmentOptions env;
    MachineConfig machine;
    bool colocation = false;
};

std::vector<EnvPreset>
envPresets()
{
    std::vector<EnvPreset> presets;

    EnvPreset native;
    native.name = "native";
    native.blurb = "native 1D walks, no prefetching";
    presets.push_back(native);

    EnvPreset nativeAsap;
    nativeAsap.name = "native_asap";
    nativeAsap.blurb = "native, ASAP placement + P1+P2 prefetching";
    nativeAsap.env.asapPlacement = true;
    nativeAsap.machine = makeMachineConfig(AsapConfig::p1p2());
    presets.push_back(nativeAsap);

    EnvPreset virt;
    virt.name = "virt_2d";
    virt.blurb = "virtualized 2D walks, no prefetching";
    virt.env.virtualized = true;
    presets.push_back(virt);

    EnvPreset virtAsap;
    virtAsap.name = "virt_2d_asap";
    virtAsap.blurb = "virtualized, guest+host ASAP (all four prefetchers)";
    virtAsap.env.virtualized = true;
    virtAsap.env.asapPlacement = true;
    virtAsap.machine =
        makeMachineConfig(AsapConfig::p1p2(), AsapConfig::p1p2());
    presets.push_back(virtAsap);

    EnvPreset hugepage;
    hugepage.name = "virt_hugepage_asap";
    hugepage.blurb = "virtualized, 2MB host pages, guest+host ASAP";
    hugepage.env.virtualized = true;
    hugepage.env.hostHugePages = true;
    hugepage.env.asapPlacement = true;
    hugepage.machine =
        makeMachineConfig(AsapConfig::p1p2(), AsapConfig::p2());
    presets.push_back(hugepage);

    EnvPreset clustered;
    clustered.name = "clustered_l2";
    clustered.blurb = "native, clustered L2 TLB";
    clustered.machine.tlb.clusteredL2 = true;
    presets.push_back(clustered);

    EnvPreset coloc;
    coloc.name = "coloc_asap";
    coloc.blurb = "native ASAP under SMT colocation";
    coloc.env.asapPlacement = true;
    coloc.machine = makeMachineConfig(AsapConfig::p1p2());
    coloc.colocation = true;
    presets.push_back(coloc);

    return presets;
}

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --spec <workload> --env <preset> [options]\n"
        "\n"
        "  --spec NAME     workload (suite name, name@dynprofile, or\n"
        "                  trace:path — anything a sweep accepts)\n"
        "  --env NAME      environment preset (see below)\n"
        "  --events PATH   write Chrome trace-event JSON (Perfetto)\n"
        "  --timeline[=N]  sample a timeline epoch every N measured\n"
        "                  accesses (default measure/32); merges counter\n"
        "                  tracks into --events output\n"
        "  --timeline-out PATH\n"
        "                  write the epoch table (JSONL; CSV if PATH\n"
        "                  ends in .csv)\n"
        "  --summary       print per-kind event counts and run stats\n"
        "  --cores N       multi-core mode: schedule onto N cores\n"
        "  --tenants N     multi-core mode: N tenant copies of --spec\n"
        "                  (either flag > 1 switches to the src/mc\n"
        "                  simulator; IPI events land in --events, one\n"
        "                  gauge track per core in --timeline)\n"
        "  --seed N        run seed (default 7)\n"
        "  --accesses N    measured accesses (default: RunConfig default;\n"
        "                  ASAP_QUICK=1 shrinks it)\n"
        "  --capacity N    trace-ring capacity in events (default %zu)\n"
        "\n"
        "environment presets:\n",
        argv0, obs::TraceSink::defaultCapacity);
    for (const EnvPreset &preset : envPresets())
        std::fprintf(stderr, "  %-20s %s\n", preset.name, preset.blurb);
    return 2;
}

/** The real tool; main() below maps StatusError to exit(1). */
int
run(int argc, char **argv)
{
    std::string specName;
    std::string envName;
    std::string eventsPath;
    std::string timelinePath;
    bool timeline = false;
    std::uint64_t epochAccesses = 0;   ///< 0 = auto (measure/32)
    bool summary = false;
    unsigned mcCores = 1;
    unsigned mcTenants = 1;
    std::uint64_t seed = 7;
    std::uint64_t accesses = 0;
    std::size_t capacity = obs::TraceSink::defaultCapacity;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--spec") == 0 && i + 1 < argc) {
            specName = argv[++i];
        } else if (std::strcmp(argv[i], "--env") == 0 && i + 1 < argc) {
            envName = argv[++i];
        } else if (std::strcmp(argv[i], "--events") == 0 && i + 1 < argc) {
            eventsPath = argv[++i];
        } else if (std::strcmp(argv[i], "--timeline") == 0) {
            timeline = true;
        } else if (std::strncmp(argv[i], "--timeline=", 11) == 0) {
            timeline = true;
            epochAccesses = std::strtoull(argv[i] + 11, nullptr, 0);
        } else if (std::strcmp(argv[i], "--timeline-out") == 0 &&
                   i + 1 < argc) {
            timeline = true;
            timelinePath = argv[++i];
        } else if (std::strcmp(argv[i], "--summary") == 0) {
            summary = true;
        } else if (std::strcmp(argv[i], "--cores") == 0 && i + 1 < argc) {
            mcCores = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 0));
        } else if (std::strcmp(argv[i], "--tenants") == 0 &&
                   i + 1 < argc) {
            mcTenants = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 0));
        } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
            seed = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--accesses") == 0 &&
                   i + 1 < argc) {
            accesses = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--capacity") == 0 &&
                   i + 1 < argc) {
            capacity = std::strtoull(argv[++i], nullptr, 0);
        } else {
            return usage(argv[0]);
        }
    }
    if (specName.empty() || envName.empty())
        return usage(argv[0]);
    if (eventsPath.empty() && !summary)
        summary = true;   // asking for nothing means "tell me about it"

    const auto spec = specByName(specName);
    if (!spec) {
        std::fprintf(stderr, "run_inspect: unknown workload '%s'\n",
                     specName.c_str());
        return 2;
    }
    const std::vector<EnvPreset> presets = envPresets();
    const EnvPreset *preset = nullptr;
    for (const EnvPreset &candidate : presets) {
        if (envName == candidate.name)
            preset = &candidate;
    }
    if (!preset) {
        std::fprintf(stderr, "run_inspect: unknown environment '%s'\n",
                     envName.c_str());
        return 2;
    }
    const EnvPreset &chosen = *preset;

    const bool multicore = mcCores > 1 || mcTenants > 1;
    if (mcCores == 0 || mcTenants == 0) {
        std::fprintf(stderr,
                     "run_inspect: --cores/--tenants must be >= 1\n");
        return 2;
    }

    RunConfig run = defaultRunConfig(chosen.colocation, seed);
    if (accesses != 0)
        run.measureAccesses = accesses;

    obs::TraceSink sink(capacity);
    sink.setEnabled(true);
    // Default epoch length: 32 epochs over the measure phase (summed
    // across tenants in multi-core mode) — enough resolution for drift
    // curves without drowning the trace viewer.
    if (timeline && epochAccesses == 0)
        epochAccesses = std::max<std::uint64_t>(
            run.measureAccesses * mcTenants / 32, 1);
    obs::Timeline epochs(epochAccesses);
    epochs.setEnabled(true);

    // One tenant's OS state + stream (multi-core mode; tenants must
    // outlive the simulator's run).
    struct Tenant
    {
        std::unique_ptr<System> system;
        std::unique_ptr<Workload> workload;
    };

    RunStats stats;
    mc::McResult mcResult;
    if (multicore) {
        // N identical tenant processes of --spec on M cores under the
        // deterministic mc scheduler (each tenant still gets its own
        // derived stream seed; see mc/multicore.cc).
        mc::McConfig mcConfig;
        mcConfig.cores = mcCores;
        mc::MultiCoreSimulator sim(mcConfig, chosen.machine);
        std::vector<Tenant> tenants;
        tenants.reserve(mcTenants);
        for (unsigned t = 0; t < mcTenants; ++t) {
            Tenant tenant;
            tenant.system = std::make_unique<System>(
                makeSystemConfig(*spec, chosen.env));
            tenant.workload = makeWorkload(*spec);
            tenant.workload->setup(*tenant.system);
            tenants.push_back(std::move(tenant));
            sim.addTenant(*tenants.back().system,
                          *tenants.back().workload);
        }
        sim.attachTraceSink(&sink);
        if (timeline)
            sim.attachTimeline(&epochs);
        mcResult = sim.run(run);
        stats = mcResult.aggregate;
    } else {
        Environment environment(*spec, chosen.env);
        stats = environment.run(chosen.machine, run, &sink,
                                timeline ? &epochs : nullptr);
    }

    if (!eventsPath.empty()) {
        sink.writeChromeJson(eventsPath, timeline
                                             ? epochs.chromeCounterEvents()
                                             : std::string());
        std::printf("%s: %llu events (%llu dropped)%s\n",
                    eventsPath.c_str(),
                    static_cast<unsigned long long>(sink.emitted()),
                    static_cast<unsigned long long>(sink.dropped()),
                    timeline ? " + timeline counter tracks" : "");
    }
    if (timeline && !timelinePath.empty()) {
        const bool csv = timelinePath.size() > 4 &&
                         timelinePath.compare(timelinePath.size() - 4, 4,
                                              ".csv") == 0;
        const Status status = csv ? epochs.writeCsv(timelinePath)
                                  : epochs.writeJsonl(timelinePath);
        if (status.ok()) {
            std::printf("%s: %zu epochs (every %llu accesses)\n",
                        timelinePath.c_str(), epochs.epochCount(),
                        static_cast<unsigned long long>(epochAccesses));
        } else {
            // Recoverable by design: the run's results are already in
            // hand; a failed artifact write must not turn into exit(1).
            std::fprintf(stderr, "run_inspect: timeline write failed: %s\n",
                         status.toString().c_str());
        }
    }
    if (summary) {
        std::printf("%s @ %s: %llu accesses, %llu walks, "
                    "avg walk %.1f cycles\n",
                    specName.c_str(), chosen.name,
                    static_cast<unsigned long long>(stats.accesses),
                    static_cast<unsigned long long>(
                        stats.walkLatency.count()),
                    stats.avgWalkLatency());
        std::printf("walk latency  p50 %llu  p90 %llu  p99 %llu  "
                    "p99.9 %llu cycles\n",
                    static_cast<unsigned long long>(stats.walkHist.p50()),
                    static_cast<unsigned long long>(stats.walkHist.p90()),
                    static_cast<unsigned long long>(stats.walkHist.p99()),
                    static_cast<unsigned long long>(stats.walkHist.p999()));
        std::printf("data latency  p50 %llu  p99 %llu cycles\n",
                    static_cast<unsigned long long>(stats.dataHist.p50()),
                    static_cast<unsigned long long>(stats.dataHist.p99()));
        std::printf("self-profile  setup %.2fs  warmup %.2fs  "
                    "measure %.2fs  %.0f acc/s  peak RSS %.1f MiB\n",
                    stats.profile.envSetupSec, stats.profile.warmupSec,
                    stats.profile.measureSec, stats.profile.accessesPerSec,
                    static_cast<double>(stats.profile.peakRssBytes) /
                        (1024.0 * 1024.0));
        if (multicore) {
            std::printf("mc: %u cores x %u tenants, %llu slots, "
                        "max core cycle %llu\n",
                        mcCores, mcTenants,
                        static_cast<unsigned long long>(mcResult.slots),
                        static_cast<unsigned long long>(
                            mcResult.maxCoreCycle));
            for (unsigned t = 0; t < mcTenants; ++t) {
                const RunStats &ts = mcResult.tenants[t];
                const mc::TenantStats &tm = mcResult.tenantMc[t];
                std::printf(
                    "  tenant %-3u %llu accesses  avg walk %6.1f  "
                    "p99 %5llu  shootdowns %llu  ipisSent %llu  "
                    "ipiCycles %llu\n",
                    t, static_cast<unsigned long long>(ts.accesses),
                    ts.avgWalkLatency(),
                    static_cast<unsigned long long>(ts.walkHist.p99()),
                    static_cast<unsigned long long>(tm.shootdowns),
                    static_cast<unsigned long long>(tm.ipisSent),
                    static_cast<unsigned long long>(
                        tm.ipiSendWaitCycles + tm.ipiRemoteCycles));
            }
            for (unsigned c = 0; c < mcCores; ++c) {
                const mc::CoreStats &cs = mcResult.coreMc[c];
                std::printf("  core %-5u switches %-6llu "
                            "ipisReceived %-6llu interruptCycles %llu\n",
                            c,
                            static_cast<unsigned long long>(cs.switches),
                            static_cast<unsigned long long>(
                                cs.ipisReceived),
                            static_cast<unsigned long long>(
                                cs.ipiInterruptCycles));
            }
        }
        std::fputs(sink.summary().c_str(), stdout);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Trace-loading and spec-parsing errors are recoverable
    // StatusErrors in the library; a CLI turns them back into the
    // classic exit(1) UX.
    try {
        return run(argc, argv);
    } catch (const StatusError &error) {
        std::fprintf(stderr, "run_inspect: %s\n", error.what());
        return 1;
    }
}
