/**
 * @file
 * Trace-ingestion CLI: convert between the ASAP containers and import
 * external captures (see src/trace/).
 *
 *   trace_convert in.asaptrace out.trc2                # v1 -> v2
 *   trace_convert in.asaptrace out.trc2 --sample 1/8   # sampled stream
 *   trace_convert mem.log out.trc2 --from text         # import
 *   trace_convert champ.bin out.trc2 --from champsim --name mcached
 *   trace_convert --stats some.trc2                    # inspect only
 *
 * Conversions from an ASAP container preserve the metadata block and
 * setup stream; imports synthesize them from the observed footprint
 * (src/trace/importer.hh). --verify replays input and output on a
 * fresh native System and diffs RunStats — the round-trip guarantee,
 * checked in CI.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "trace/convert.hh"
#include "trace/format.hh"

using namespace asap;

namespace
{

int
usage(const char *argv0)
{
    std::string importers;
    for (const TraceImporter *importer : traceImporters())
        importers += strprintf("                  %-11s %s\n",
                               importer->formatName(),
                               importer->description());
    std::fprintf(
        stderr,
        "usage: %s <in> <out> [options]\n"
        "       %s --stats <in>\n"
        "\n"
        "Converts an ASAP trace (either container version) or an\n"
        "external capture into the chunked ASAPTRC2 container.\n"
        "\n"
        "  --from FMT      input format (default: auto-detect):\n"
        "                  asap        an ASAPTRC1/ASAPTRC2 container\n"
        "%s"
        "  --chunk N       accesses per chunk (default 65536)\n"
        "  --sample 1/N    keep every N-th chunk (sampled-stream mode;\n"
        "                  RunStats of a replay scale by ~N)\n"
        "  --no-compress   store raw chunks (default: deflate when it\n"
        "                  shrinks; %s)\n"
        "  --stats         print a summary of the files\n"
        "  --json          with --stats: one machine-readable JSON\n"
        "                  object instead of text (u64s as decimal\n"
        "                  strings)\n"
        "  --verify        replay in and out, diff RunStats (full\n"
        "                  conversions only — sampling changes the\n"
        "                  stream by design)\n"
        "\n"
        "Import metadata (external captures only):\n"
        "  --name S        workload name (default: input basename)\n"
        "  --cycles N      compute cycles per access (default 4)\n"
        "  --paper-gb X    paper-scale dataset size, informational\n"
        "  --vma-gap N     max untouched-page gap folded into one VMA\n"
        "                  (default 64)\n",
        argv0, argv0, importers.c_str(),
        traceCompressionAvailable() ? "zlib available"
                                    : "built WITHOUT zlib");
    return 2;
}

bool
isAsapContainer(const std::uint8_t *data, std::size_t size)
{
    return size >= sizeof(trc1Magic) &&
           (std::memcmp(data, trc1Magic, sizeof(trc1Magic)) == 0 ||
            std::memcmp(data, trc2Magic, sizeof(trc2Magic)) == 0);
}

/** The real tool; main() below maps StatusError to exit(1). */
int
run(int argc, char **argv)
{
    std::string in, out, from, name;
    Trc2Options options;
    ImportOptions importOptions;
    bool stats = false, statsJson = false, verify = false;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--from") == 0 && i + 1 < argc) {
            from = argv[++i];
        } else if (std::strcmp(arg, "--chunk") == 0 && i + 1 < argc) {
            options.chunkAccesses =
                static_cast<std::uint32_t>(std::strtoul(argv[++i],
                                                        nullptr, 0));
        } else if (std::strcmp(arg, "--sample") == 0 && i + 1 < argc) {
            const char *spec = argv[++i];
            unsigned one = 0, n = 0;
            if (std::sscanf(spec, "%u/%u", &one, &n) != 2 || one != 1 ||
                n == 0) {
                std::fprintf(stderr,
                             "trace_convert: --sample wants 1/N, got "
                             "'%s'\n",
                             spec);
                return 2;
            }
            options.sampleInterval = n;
        } else if (std::strcmp(arg, "--no-compress") == 0) {
            options.compress = false;
        } else if (std::strcmp(arg, "--stats") == 0) {
            stats = true;
        } else if (std::strcmp(arg, "--json") == 0) {
            statsJson = true;
        } else if (std::strcmp(arg, "--verify") == 0) {
            verify = true;
        } else if (std::strcmp(arg, "--name") == 0 && i + 1 < argc) {
            importOptions.name = argv[++i];
        } else if (std::strcmp(arg, "--cycles") == 0 && i + 1 < argc) {
            importOptions.cyclesPerAccess =
                static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (std::strcmp(arg, "--paper-gb") == 0 && i + 1 < argc) {
            importOptions.paperGb = std::atof(argv[++i]);
        } else if (std::strcmp(arg, "--vma-gap") == 0 && i + 1 < argc) {
            importOptions.maxVmaGapPages =
                std::strtoull(argv[++i], nullptr, 0);
        } else if (arg[0] == '-') {
            return usage(argv[0]);
        } else if (in.empty()) {
            in = arg;
        } else if (out.empty()) {
            out = arg;
        } else {
            return usage(argv[0]);
        }
    }
    if (in.empty())
        return usage(argv[0]);

    if (statsJson && !stats)
        return usage(argv[0]);

    // Inspect-only mode: --stats with a single path.
    if (out.empty()) {
        if (!stats)
            return usage(argv[0]);
        const TraceFile trace(in);
        if (statsJson) {
            std::fputs(traceAccessStatsJson(trace).c_str(), stdout);
        } else {
            std::fputs(traceSummary(trace).c_str(), stdout);
            std::fputs(traceAccessStats(trace).c_str(), stdout);
        }
        return 0;
    }

    // Resolve the input format.
    const TraceImporter *importer = nullptr;
    if (from.empty() || from == "auto") {
        const MappedFile probe(in);
        if (!isAsapContainer(probe.data(), probe.size())) {
            importer = detectImporter(probe.data(), probe.size());
            if (!importer) {
                std::fprintf(stderr,
                             "trace_convert: cannot detect the format "
                             "of %s; use --from\n",
                             in.c_str());
                return 2;
            }
        }
    } else if (from != "asap") {
        importer = importerByName(from);
        if (!importer) {
            std::fprintf(stderr,
                         "trace_convert: unknown format '%s'\n",
                         from.c_str());
            return 2;
        }
    }

    if (importer) {
        const ImportSummary summary =
            importTrace(*importer, in, out, importOptions, options);
        std::printf(
            "%s: imported %lu %s references -> %lu accesses in %lu "
            "chunks (%lu VMAs over %lu pages, %.2f bytes/access)\n",
            out.c_str(), static_cast<unsigned long>(summary.references),
            importer->formatName(),
            static_cast<unsigned long>(summary.container.storedAccesses),
            static_cast<unsigned long>(summary.container.chunkCount),
            static_cast<unsigned long>(summary.vmas),
            static_cast<unsigned long>(summary.touchedPages),
            static_cast<double>(summary.container.fileBytes) /
                static_cast<double>(summary.container.storedAccesses));
    } else {
        const Trc2Summary summary = convertToV2(in, out, options);
        std::printf(
            "%s: %lu of %lu accesses in %lu chunks, %lu bytes "
            "(%.2f bytes/stored access, stream %.2fx)\n",
            out.c_str(),
            static_cast<unsigned long>(summary.storedAccesses),
            static_cast<unsigned long>(summary.representedAccesses),
            static_cast<unsigned long>(summary.chunkCount),
            static_cast<unsigned long>(summary.fileBytes),
            static_cast<double>(summary.fileBytes) /
                static_cast<double>(summary.storedAccesses),
            summary.storedStreamBytes
                ? static_cast<double>(summary.rawStreamBytes) /
                      static_cast<double>(summary.storedStreamBytes)
                : 0.0);
    }

    if (stats) {
        const TraceFile trace(out);
        if (statsJson) {
            std::fputs(traceAccessStatsJson(trace).c_str(), stdout);
        } else {
            std::fputs(traceSummary(trace).c_str(), stdout);
            std::fputs(traceAccessStats(trace).c_str(), stdout);
        }
    }

    if (verify) {
        if (options.sampleInterval != 1 || importer) {
            std::fprintf(stderr,
                         "trace_convert: --verify only applies to full "
                         "container conversions\n");
            return 2;
        }
        std::string report;
        if (!replayStatsMatch(in, out, /*warmupAccesses=*/2'000,
                              /*measureAccesses=*/10'000, report)) {
            std::fprintf(stderr,
                         "trace_convert: replay MISMATCH between %s "
                         "and %s:\n%s",
                         in.c_str(), out.c_str(), report.c_str());
            return 1;
        }
        std::printf("verify: %s and %s replay identically\n", in.c_str(),
                    out.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Loading/parsing errors are recoverable StatusErrors in the
    // library; a CLI turns them back into the classic exit(1) UX.
    try {
        return run(argc, argv);
    } catch (const StatusError &error) {
        std::fprintf(stderr, "trace_convert: %s\n", error.what());
        return 1;
    }
}
