/**
 * @file
 * Regenerates the checked-in fuzz seed corpus:
 *
 *   make_fuzz_corpus [outdir]        (default fuzz/corpus)
 *
 * writes small valid inputs for each fuzz target —
 * outdir/trace_file/ gets one seed per container shape (ASAPTRC1,
 * raw/compressed/sampled ASAPTRC2, ASAPTRC2 with an OS-event chunk)
 * and outdir/importers/ one seed per importer format. Valid seeds are
 * what a mutating fuzzer wants; it derives the broken variants itself.
 *
 * Every seed is deterministic (fixed specs and seeds), so rerunning
 * the tool reproduces the corpus byte-for-byte and a diff in CI means
 * a format change, not noise.
 */

#include <cstdio>
#include <filesystem>
#include <string>

#include "common/status.hh"
#include "trace/convert.hh"
#include "trace/format.hh"
#include "trace/trace_file.hh"
#include "workloads/dynamic.hh"
#include "workloads/suite.hh"
#include "workloads/trace.hh"

using namespace asap;

namespace
{

/** Smallest spec that still exercises multi-VMA setup and churn. */
WorkloadSpec
seedSpec()
{
    WorkloadSpec spec;
    spec.name = "fuzzseed";
    spec.paperGb = 0.1;
    spec.residentPages = 900;
    spec.dataVmas = 2;
    spec.smallVmas = 3;
    spec.cyclesPerAccess = 4;
    spec.windowFraction = 0.5;
    spec.windowPages = 200;
    spec.nearFraction = 0.1;
    spec.seqFraction = 0.1;
    spec.linesPerPage = 2;
    spec.burstContinueProb = 0.5;
    spec.machineMemBytes = 256_MiB;
    spec.guestMemBytes = 64_MiB;
    spec.churnOps = 500;
    spec.churnMaxOrder = 2;
    return spec;
}

void
writeBytes(const std::string &path, const std::string &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    io_error_if(f == nullptr, "%s: cannot open for writing",
                path.c_str());
    const std::size_t written =
        std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    io_error_if(written != bytes.size(), "%s: short write",
                path.c_str());
    std::printf("  %-28s %zu bytes\n",
                path.substr(path.rfind('/') + 1).c_str(), bytes.size());
}

void
put16(std::string &out, std::uint16_t v)
{
    out.push_back(static_cast<char>(v & 0xff));
    out.push_back(static_cast<char>(v >> 8));
}

/** One drmemtrace entry (type, size, pad, addr — 16 bytes LE). */
std::string
drmemRecord(std::uint16_t type, std::uint16_t size, std::uint64_t addr)
{
    std::string out;
    put16(out, type);
    put16(out, size);
    put32(out, 0);
    put64(out, addr);
    return out;
}

/** One ChampSim input_instr (ip, flags, 2 dest + 4 src VAs — 64B). */
std::string
champsimRecord(std::uint64_t ip, std::uint64_t dest0, std::uint64_t src0,
               std::uint64_t src1)
{
    std::string out;
    put64(out, ip);
    out.append(8, '\0');
    put64(out, dest0);
    put64(out, 0);
    put64(out, src0);
    put64(out, src1);
    put64(out, 0);
    put64(out, 0);
    return out;
}

void
appendProtoVarint(std::string &out, std::uint64_t field, std::uint64_t v)
{
    putVarint(out, (field << 3) | 0);
    putVarint(out, v);
}

void
appendGem5Message(std::string &out, const std::string &message)
{
    putVarint(out, message.size());
    out += message;
}

void
writeTraceSeeds(const std::string &dir)
{
    const WorkloadSpec spec = seedSpec();

    recordTrace(spec, dir + "/v1_small.asaptrace", /*seed=*/11,
                /*accesses=*/400);
    std::printf("  %-28s (ASAPTRC1)\n", "v1_small.asaptrace");

    // Small chunks so a few hundred accesses still span several chunks
    // (multi-chunk decode, index walk, chunk re-basing).
    RecordOptions raw;
    raw.version = trc2Version;
    raw.v2.chunkAccesses = 128;
    raw.v2.compress = false;
    const std::string rawPath = dir + "/v2_raw.asaptrace";
    recordTrace(spec, rawPath, 11, 400, raw);
    std::printf("  %-28s (ASAPTRC2, raw chunks)\n", "v2_raw.asaptrace");

    if (traceCompressionAvailable()) {
        RecordOptions deflate = raw;
        deflate.v2.compress = true;
        recordTrace(spec, dir + "/v2_deflate.asaptrace", 11, 400,
                    deflate);
        std::printf("  %-28s (ASAPTRC2, deflate chunks)\n",
                    "v2_deflate.asaptrace");
    } else {
        std::printf("  (no zlib: skipping v2_deflate.asaptrace)\n");
    }

    Trc2Options sampled;
    sampled.chunkAccesses = 64;
    sampled.compress = false;
    sampled.sampleInterval = 2;
    convertToV2(rawPath, dir + "/v2_sampled.asaptrace", sampled);
    std::printf("  %-28s (ASAPTRC2, 1-in-2 sampled)\n",
                "v2_sampled.asaptrace");

    RecordOptions events;
    events.version = trc2Version;
    events.v2.chunkAccesses = 256;
    events.v2.compress = false;
    recordTrace(withDynamics(spec, "tenants", 1.0, 300),
                dir + "/v2_events.asaptrace", 11, 1'000, events);
    std::printf("  %-28s (ASAPTRC2, OS-event chunk)\n",
                "v2_events.asaptrace");
}

void
writeImporterSeeds(const std::string &dir)
{
    writeBytes(dir + "/text.trace",
               "# fuzz seed: plain-text capture\n"
               "0x7f3a00001000\n"
               "0x7f3a00001040,16\n"
               "0x7f3a00002008,4,w\n"
               "139922431676416,8,r\n"
               "0x7ffee0000010\n");

    std::string drmem;
    drmem += drmemRecord(0, 8, 0x7000'0000);
    drmem += drmemRecord(10, 4, 0xdead'0000);
    drmem += drmemRecord(1, 16, 0x7000'2000);
    drmem += drmemRecord(0, 0, 0x7000'4000);
    writeBytes(dir + "/drmemtrace.bin", drmem);

    std::string champsim;
    champsim += champsimRecord(0x400000, 0x7100'1000, 0x7000'1000,
                               0x7000'2000);
    champsim += champsimRecord(0x400004, 0, 0, 0);
    champsim += champsimRecord(0x400008, 0x7100'3000, 0, 0);
    writeBytes(dir + "/champsim.bin", champsim);

    std::string gem5 = "gem5";
    {
        std::string header;
        const std::string objId = "system.monitor";
        putVarint(header, (1ull << 3) | 2);
        putVarint(header, objId.size());
        header += objId;
        appendProtoVarint(header, 2, 1);
        appendProtoVarint(header, 3, 1'000'000'000'000);
        appendGem5Message(gem5, header);
    }
    for (unsigned i = 0; i < 3; ++i) {
        std::string packet;
        appendProtoVarint(packet, 1, 100 * (i + 1));        // tick
        appendProtoVarint(packet, 2, i == 1 ? 4 : 1);       // cmd
        appendProtoVarint(packet, 3,
                          0x7f00'0000'1000ull + i * 0x1000); // addr
        appendProtoVarint(packet, 4, 64);                    // size
        appendGem5Message(gem5, packet);
    }
    writeBytes(dir + "/gem5.bin", gem5);
}

int
run(int argc, char **argv)
{
    const std::string outDir = argc > 1 ? argv[1] : "fuzz/corpus";
    const std::string traceDir = outDir + "/trace_file";
    const std::string importDir = outDir + "/importers";
    std::filesystem::create_directories(traceDir);
    std::filesystem::create_directories(importDir);

    std::printf("%s:\n", traceDir.c_str());
    writeTraceSeeds(traceDir);
    std::printf("%s:\n", importDir.c_str());
    writeImporterSeeds(importDir);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const StatusError &error) {
        std::fprintf(stderr, "make_fuzz_corpus: %s\n", error.what());
        return 1;
    }
}
